package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/rex-data/rex/internal/types"
)

// TCPTransport is the socket-backed Transport: workers are separate OS
// processes connected by real TCP links carrying PR 1's wire format in
// length-prefixed frames. One type serves both roles:
//
//   - Driver (NewTCPDriver): runs the query requestor. It dials each
//     worker daemon lazily and keeps the connections open for the whole
//     session; everything a worker writes back on those connections lands
//     in the requestor mailbox. The driver owns the alive-set — Kill and
//     Revive ship MsgKill/MsgRevive control frames to the daemons, so
//     failure injection works across process boundaries.
//
//   - Node (ListenTCPNode): runs inside a worker daemon. It accepts
//     connections from the driver and from peer workers, routes engine
//     frames to the local worker inbox, daemon control frames (MsgJob,
//     MsgStatsReq, MsgQuit, …) to the Control mailbox, and dials peers
//     directly for shuffle traffic. A node is unconfigured until the
//     first MsgJob arrives: Configure assigns its NodeID and peer list.
//
// Byte accounting matches InProcTransport semantics: only inter-worker
// frames count (loopback and requestor control-plane traffic do not), but
// here the counted size is what the socket actually carried — frame plus
// length prefix. Each process accumulates its own counters; the driver's
// SyncMetrics pulls them over at the end of a run.
//
// Frames from a previous run can still be in flight when the next one
// starts, so every frame carries a job generation; receivers drop frames
// from stale generations (decode hardening drops malformed frames and
// poisons their connection).
type TCPTransport struct {
	driver bool
	ln     net.Listener

	// credits is the flow-control book: a node installs the windows its
	// peers grant it (piggybacked on punctuation frames arriving off the
	// sockets) and its local worker spends them. The driver never ships
	// shuffle data, so its book stays at the defaults.
	credits creditBook

	mu        sync.Mutex
	self      NodeID // -1 on the driver and on unconfigured nodes
	addrs     []string
	n         int
	gen       int // current job generation
	metrics   *Metrics
	alive     []bool
	inbox     *Mailbox // node side: the local worker's inbox
	requestor *Mailbox // driver side
	control   *Mailbox // node side: daemon control queue
	conns     map[string]*tcpConn
	reqConn   *tcpConn // node side: the connection back to the driver
	closed    bool
}

var _ Transport = (*TCPTransport)(nil)
var _ MetricsSyncer = (*TCPTransport)(nil)

// tcpConn serializes writers on one outbound connection.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
}

const (
	// tcpFrameHeader is the length prefix every frame travels behind.
	tcpFrameHeader = 4
	// tcpMaxFrame bounds a frame a receiver will buffer; a forged length
	// cannot make the decoder allocate unboundedly.
	tcpMaxFrame = 1 << 26 // 64 MiB
	// tcpDialTimeout bounds lazy connection establishment.
	tcpDialTimeout = 5 * time.Second
	// tcpSyncTimeout bounds a driver's wait for remote counters.
	tcpSyncTimeout = 15 * time.Second
)

// NewTCPDriver creates the requestor-side transport over the given worker
// daemon addresses (index = NodeID). Connections are dialed lazily on
// first send.
func NewTCPDriver(addrs []string) (*TCPTransport, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: tcp driver needs at least one worker address")
	}
	t := &TCPTransport{
		driver:    true,
		self:      -1,
		addrs:     append([]string(nil), addrs...),
		n:         len(addrs),
		metrics:   NewMetrics(len(addrs)),
		alive:     make([]bool, len(addrs)),
		requestor: NewMailbox(),
		conns:     map[string]*tcpConn{},
	}
	for i := range t.alive {
		t.alive[i] = true
	}
	return t, nil
}

// ListenTCPNode creates the worker-side transport, listening on addr
// (":0" picks a free port; see Addr). The node is unconfigured — it only
// routes daemon control frames — until Configure runs.
func ListenTCPNode(addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &TCPTransport{
		self:    -1,
		ln:      ln,
		control: NewMailbox(),
		conns:   map[string]*tcpConn{},
	}
	go t.acceptLoop(ln)
	return t, nil
}

// Addr reports the node listener's bound address.
func (t *TCPTransport) Addr() string {
	if t.ln == nil {
		return ""
	}
	return t.ln.Addr().String()
}

// Self reports this process's node id (-1 on the driver or before
// Configure).
func (t *TCPTransport) Self() NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.self
}

// Control returns the daemon control mailbox (node side): MsgJob,
// MsgKill, MsgRevive, MsgStatsReq, and MsgQuit land here.
func (t *TCPTransport) Control() *Mailbox { return t.control }

// Generation reports the current job generation.
func (t *TCPTransport) Generation() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.gen
}

// Configure assigns the node its identity for a new job generation: its
// NodeID, the full peer address list, and the generation whose frames it
// should accept. Any previous inbox is closed (stopping a stale worker
// loop) and replaced. Counters persist across jobs when the cluster shape
// is unchanged, so SyncMetrics sees cumulative values.
func (t *TCPTransport) Configure(self NodeID, peers []string, gen int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.driver {
		return fmt.Errorf("cluster: Configure on a driver transport")
	}
	if self < 0 || int(self) >= len(peers) {
		return fmt.Errorf("cluster: node id %d out of range for %d peers", self, len(peers))
	}
	if t.metrics == nil || t.n != len(peers) {
		t.metrics = NewMetrics(len(peers))
	}
	t.self = self
	t.addrs = append([]string(nil), peers...)
	t.n = len(peers)
	t.gen = gen
	t.alive = make([]bool, t.n)
	for i := range t.alive {
		t.alive[i] = true
	}
	if t.inbox != nil {
		t.inbox.Close()
	}
	t.inbox = NewMailbox()
	t.credits.reset() // a new job starts with full send windows
	return nil
}

// Quiesce closes the node's current inbox without touching its identity
// or generation: the worker loop draining that inbox wakes up and exits,
// and anything it sends on the way out is still stamped with the OLD
// generation, so peers and the driver drop it as stale. Daemons call
// this (and join the loop) BEFORE Configure bumps the generation for the
// next job — Send stamps frames with the current generation at send
// time, so a loop joined only after the bump could sign its final
// stragglers (votes, flushed shuffle batches) with the new job's
// generation and poison the next run's mailboxes.
func (t *TCPTransport) Quiesce() {
	t.mu.Lock()
	inbox := t.inbox
	t.mu.Unlock()
	if inbox != nil {
		inbox.Close()
	}
}

// StartJob begins a new job generation on the driver: it revives its view
// of every node and ships a MsgJob carrying payload to each daemon. The
// per-node frame's To field tells each daemon its NodeID.
func (t *TCPTransport) StartJob(payload []byte) (gen int, err error) {
	t.mu.Lock()
	if !t.driver {
		t.mu.Unlock()
		return 0, fmt.Errorf("cluster: StartJob on a node transport")
	}
	t.gen++
	gen = t.gen
	for i := range t.alive {
		t.alive[i] = true
	}
	addrs := append([]string(nil), t.addrs...)
	t.mu.Unlock()
	// Clear debris of the previous generation (a cancelled run leaves
	// votes and result frames behind). The generation bump above makes
	// this race-free: stragglers arriving after the drain carry the old
	// generation and are dropped on receipt.
	t.requestor.Drain()
	for i, addr := range addrs {
		frame := EncodeFrame(Message{
			From: -1, To: NodeID(i), Kind: MsgJob, Payload: payload, Job: gen,
		})
		if werr := t.write(addr, frame); werr != nil {
			return gen, fmt.Errorf("cluster: job to node %d (%s): %w", i, addr, werr)
		}
	}
	return gen, nil
}

// Quit shuts down every worker daemon (even ones marked dead — a "dead"
// daemon is still a live process dropping frames) and closes the driver.
func (t *TCPTransport) Quit() {
	t.mu.Lock()
	driver := t.driver
	addrs := append([]string(nil), t.addrs...)
	gen := t.gen
	t.mu.Unlock()
	if driver {
		for i, addr := range addrs {
			_ = t.write(addr, EncodeFrame(Message{From: -1, To: NodeID(i), Kind: MsgQuit, Job: gen}))
		}
	}
	_ = t.Close()
}

// N reports the worker count (0 before a node is configured).
func (t *TCPTransport) N() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// LocalNodes lists the workers hosted by this process: none on the
// driver, the configured self on a node.
func (t *TCPTransport) LocalNodes() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.driver || t.self < 0 {
		return nil
	}
	return []NodeID{t.self}
}

// Metrics exposes this process's transport counters.
func (t *TCPTransport) Metrics() *Metrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.metrics == nil {
		t.metrics = NewMetrics(1)
	}
	return t.metrics
}

// Inbox returns the local worker's inbox; nil for non-local nodes.
func (t *TCPTransport) Inbox(n NodeID) *Mailbox {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.driver && n == t.self {
		return t.inbox
	}
	return nil
}

// Requestor returns the requestor mailbox (driver side; nil on nodes).
func (t *TCPTransport) Requestor() *Mailbox { return t.requestor }

// Alive reports liveness: the driver tracks every node; a node knows only
// itself authoritatively and assumes peers are alive (a dead peer's
// transport drops the frames on arrival, like a real network).
func (t *TCPTransport) Alive(n NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 || int(n) >= t.n {
		return false
	}
	if t.driver || n == t.self {
		return t.alive[n]
	}
	return true
}

// AliveNodes lists alive nodes as this process believes them.
func (t *TCPTransport) AliveNodes() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NodeID, 0, t.n)
	for i := 0; i < t.n; i++ {
		if t.driver || NodeID(i) == t.self {
			if !t.alive[i] {
				continue
			}
		}
		out = append(out, NodeID(i))
	}
	return out
}

// Kill (driver only) marks node n dead, ships MsgKill so the remote
// daemon starts dropping traffic, and notifies the local requestor.
func (t *TCPTransport) Kill(n NodeID) {
	t.mu.Lock()
	if !t.driver || n < 0 || int(n) >= t.n || !t.alive[n] {
		t.mu.Unlock()
		return
	}
	t.alive[n] = false
	addr := t.addrs[n]
	gen := t.gen
	t.mu.Unlock()
	// Best effort: if the daemon is unreachable it is dead already.
	_ = t.write(addr, EncodeFrame(Message{From: -1, To: n, Kind: MsgKill, Job: gen}))
	t.requestor.Put(Message{From: n, Kind: MsgFailure, Job: gen})
}

// MarkAlive (driver only) restores the driver's view of a node WITHOUT
// shipping MsgRevive. It is the respawn counterpart of Revive: a daemon
// that died for real and was restarted restored its own job state at
// boot, so the simulated-death re-arm protocol does not apply — a
// MsgRevive would reach the restored daemon with its worker loop already
// running and deadlock its control loop waiting for the loop to exit.
func (t *TCPTransport) MarkAlive(n NodeID) {
	t.mu.Lock()
	if t.driver && n >= 0 && int(n) < t.n {
		t.alive[n] = true
	}
	t.mu.Unlock()
}

// Revive (driver only) restores a node and re-arms the remote daemon.
func (t *TCPTransport) Revive(n NodeID) {
	t.mu.Lock()
	if !t.driver || n < 0 || int(n) >= t.n || t.alive[n] {
		t.mu.Unlock()
		return
	}
	t.alive[n] = true
	addr := t.addrs[n]
	gen := t.gen
	t.mu.Unlock()
	_ = t.write(addr, EncodeFrame(Message{From: -1, To: n, Kind: MsgRevive, Job: gen}))
}

// Send routes msg to a worker. Loopback self-sends skip the socket and
// the counters; inter-worker frames are counted at their measured socket
// size (length prefix included). The driver drops frames to nodes it
// declared dead without dialing; workers cannot observe peer death, so
// they pay the bytes and the dead receiver drops the frame — exactly the
// in-process semantics.
func (t *TCPTransport) Send(msg Message) {
	t.mu.Lock()
	if t.closed || msg.To < 0 || int(msg.To) >= t.n {
		t.mu.Unlock()
		return
	}
	self := t.self
	selfAlive := t.driver || (self >= 0 && t.alive[self])
	aliveTo := !t.driver || t.alive[msg.To]
	inbox := t.inbox
	addr := t.addrs[msg.To]
	msg.Job = t.gen
	t.mu.Unlock()
	if !selfAlive {
		return // a dead node sends nothing
	}
	if !t.driver && msg.To == self {
		inbox.Put(msg) // loopback: no socket, no accounting
		return
	}
	if !aliveTo {
		return // driver control to a dead node: the network drops it
	}
	frame := EncodeFrame(msg)
	if msg.From >= 0 {
		sz := int64(len(frame) + tcpFrameHeader)
		t.metrics.BytesSent[msg.From].Add(sz)
		t.metrics.MessagesSent[msg.From].Add(1)
		t.metrics.TuplesSent[msg.From].Add(int64(msg.Count))
	} else if msg.Kind == MsgStart || msg.Kind == MsgRound {
		// The driver never receives its own barriers, so reset its book
		// (the requestor's MsgIngest staging windows) at send time — the
		// same barrier semantics the workers' books observe on delivery.
		t.credits.reset()
	}
	// A write error means the peer process is gone — the distributed
	// analogue of a dropped frame. The sender already paid the bytes;
	// the requestor learns about real failures via its own channels.
	_ = t.write(addr, frame)
}

// SendData encodes and ships a delta batch along a plan edge; see
// InProcTransport.SendData for the metrics contract.
func (t *TCPTransport) SendData(from, to NodeID, edge, stratum, epoch int, batch []types.Delta) int {
	payload := EncodeDeltas(batch)
	t.Send(Message{
		From: from, To: to, Edge: edge, Stratum: stratum,
		Kind: MsgData, Payload: payload, Count: len(batch), Epoch: epoch,
	})
	return len(payload)
}

// SendToRequestor delivers a control frame to the requestor: locally on
// the driver, over the stored driver connection on a node. Requestor
// traffic is control-plane and never counted.
func (t *TCPTransport) SendToRequestor(msg Message) {
	if t.driver {
		t.requestor.Put(msg)
		return
	}
	t.mu.Lock()
	rc := t.reqConn
	selfAlive := t.self >= 0 && t.alive[t.self]
	msg.Job = t.gen
	t.mu.Unlock()
	if rc == nil || !selfAlive {
		return
	}
	_ = writeConn(rc, EncodeFrame(msg))
}

// SendControl writes a daemon-level reply (stats, readiness, job errors)
// back to the driver regardless of the node's alive flag or configuration
// state: the daemon process must answer even while the simulated node is
// "dead", and must be able to report a job that failed before Configure
// ran. A Job generation already set on msg is preserved (pre-Configure
// error replies echo the failing job's generation — the local generation
// would be stale and the driver would drop the frame); otherwise the
// current generation is stamped.
func (t *TCPTransport) SendControl(msg Message) {
	t.mu.Lock()
	rc := t.reqConn
	if msg.Job == 0 {
		msg.Job = t.gen
	}
	t.mu.Unlock()
	if rc == nil {
		return
	}
	_ = writeConn(rc, EncodeFrame(msg))
}

// Broadcast sends msg to every alive worker.
func (t *TCPTransport) Broadcast(msg Message) {
	for _, n := range t.AliveNodes() {
		m := msg
		m.To = n
		t.Send(m)
	}
}

// InboxLen reports the local inbox depth; remote queue depths are not
// observable over a socket, which is exactly why senders gate on Credits
// instead — a worker only reads its OWN depth here, to size the windows
// it grants.
func (t *TCPTransport) InboxLen(n NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.driver && n == t.self && t.inbox != nil && t.alive[n] {
		return t.inbox.Len()
	}
	return 0
}

// Credits reports the send window from `from` to `to`. On a node the
// windows are those its peers granted over the sockets; the driver never
// ships shuffle data and reports the defaults.
func (t *TCPTransport) Credits(from, to NodeID) int {
	return t.credits.credits(from, to)
}

// SpendCredits consumes send credits from `from`'s window to `to`.
func (t *TCPTransport) SpendCredits(from, to NodeID, n int) {
	t.credits.spend(from, to, n)
}

// Close tears down sockets and mailboxes. Worker daemons keep running —
// use Quit to also terminate them.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[string]*tcpConn{}
	inbox, control, requestor := t.inbox, t.control, t.requestor
	ln := t.ln
	t.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, tc := range conns {
		_ = tc.c.Close()
	}
	if inbox != nil {
		inbox.Close()
	}
	if control != nil {
		control.Close()
	}
	if requestor != nil {
		requestor.Close()
	}
	return nil
}

// SyncMetrics (driver) asks every alive daemon for its cumulative
// counters and installs them locally, so Metrics totals reflect measured
// remote socket traffic. Counters of nodes dead at sync time keep their
// last synced values.
func (t *TCPTransport) SyncMetrics() error {
	alive := t.AliveNodes()
	for _, n := range alive {
		t.Send(Message{From: -1, To: n, Kind: MsgStatsReq})
	}
	wanted := map[NodeID]bool{}
	for _, n := range alive {
		wanted[n] = true
	}
	done := make(chan error, 1)
	go func() {
		got := map[NodeID]bool{}
		for len(got) < len(alive) {
			msg, ok := t.requestor.Get()
			if !ok {
				done <- fmt.Errorf("cluster: transport closed during metrics sync")
				return
			}
			if msg.Kind == MsgCancel {
				done <- fmt.Errorf("cluster: metrics sync timed out after %v", tcpSyncTimeout)
				return
			}
			if msg.Kind != MsgStats {
				continue // late control debris from the finished run
			}
			if err := t.applyStats(msg.From, msg.Payload); err != nil {
				done <- err
				return
			}
			if wanted[msg.From] {
				// Count only the nodes polled this round: a dead node's
				// final pushed stats frame must not satisfy the quorum in
				// place of a live node's reply.
				got[msg.From] = true
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		return err
	case <-time.After(tcpSyncTimeout):
		// Unblock the collector with the local cancel sentinel so it
		// cannot linger and steal a later run's requestor frames.
		t.requestor.Put(Message{Kind: MsgCancel})
		return <-done
	}
}

// StatsPayload encodes this node's cumulative counters for MsgStats.
func (t *TCPTransport) StatsPayload() []byte {
	t.mu.Lock()
	m, self := t.metrics, t.self
	t.mu.Unlock()
	if m == nil || self < 0 {
		return nil
	}
	var buf []byte
	for _, c := range []int64{
		m.BytesSent[self].Load(), m.BytesReceived[self].Load(),
		m.MessagesSent[self].Load(), m.TuplesSent[self].Load(),
		m.CompactIn[self].Load(), m.CompactOut[self].Load(),
	} {
		buf = binary.AppendVarint(buf, c)
	}
	return buf
}

// applyStats installs a node's reported counters into the driver metrics.
func (t *TCPTransport) applyStats(n NodeID, payload []byte) error {
	if n < 0 || int(n) >= t.n {
		return fmt.Errorf("cluster: stats from unknown node %d", n)
	}
	vals := make([]int64, 6)
	off := 0
	for i := range vals {
		v, used := binary.Varint(payload[off:])
		if used <= 0 {
			return fmt.Errorf("cluster: malformed stats payload from node %d", n)
		}
		vals[i] = v
		off += used
	}
	m := t.Metrics()
	m.BytesSent[n].Store(vals[0])
	m.BytesReceived[n].Store(vals[1])
	m.MessagesSent[n].Store(vals[2])
	m.TuplesSent[n].Store(vals[3])
	m.CompactIn[n].Store(vals[4])
	m.CompactOut[n].Store(vals[5])
	return nil
}

// acceptLoop admits inbound connections (driver and peer workers alike).
func (t *TCPTransport) acceptLoop(ln net.Listener) {
	for {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		go t.readLoop(nc, &tcpConn{c: nc}, "")
	}
}

// readLoop decodes frames off one connection and routes them. A frame
// that fails length or decode validation poisons the connection: framing
// is byte-exact, so garbage means the stream can never resynchronize.
// addr, when non-empty, names the worker daemon this (outbound) connection
// reaches: a driver treats its loss as the node's death.
func (t *TCPTransport) readLoop(nc net.Conn, tc *tcpConn, addr string) {
	defer nc.Close()
	br := bufio.NewReaderSize(nc, 64<<10)
	for {
		frame, err := readFrame(br)
		if err != nil {
			break
		}
		msg, err := DecodeFrame(frame)
		if err != nil {
			break
		}
		t.deliver(msg, len(frame), tc)
	}
	if addr != "" {
		t.nodeDown(addr)
	}
}

// nodeDown is the driver's broken-connection failure signal: when the
// socket to a worker daemon drops (read EOF or write error) the process
// behind it is gone, which is a real node death — not the driver-declared
// MsgKill kind. The node is marked dead and the requestor notified, so a
// query in flight errors out (RecoveryNone) or recovers on the survivors
// instead of waiting forever for votes that will never come.
func (t *TCPTransport) nodeDown(addr string) {
	t.mu.Lock()
	if !t.driver || t.closed {
		t.mu.Unlock()
		return
	}
	n := NodeID(-1)
	for i, a := range t.addrs {
		if a == addr {
			n = NodeID(i)
			break
		}
	}
	if n < 0 || !t.alive[n] {
		t.mu.Unlock()
		return
	}
	t.alive[n] = false
	gen := t.gen
	t.mu.Unlock()
	t.requestor.Put(Message{From: n, Kind: MsgFailure, Job: gen})
}

// deliver routes one received frame by role and kind.
func (t *TCPTransport) deliver(msg Message, frameLen int, via *tcpConn) {
	if t.driver {
		t.mu.Lock()
		stale := msg.Job != t.gen
		t.mu.Unlock()
		if stale {
			return
		}
		if msg.Kind == MsgStats {
			// Install counters on arrival, not only inside SyncMetrics: a
			// daemon killed mid-run pushes a final stats frame with no
			// collector waiting, and applying it here is what folds the
			// dead node's traffic into the driver totals.
			_ = t.applyStats(msg.From, msg.Payload)
		}
		// Flow-control side effects on the driver side: a worker's
		// MsgCreditAck grant re-arms the requestor's MsgIngest staging
		// window toward it.
		t.credits.observe(msg)
		t.requestor.Put(msg)
		return
	}
	t.mu.Lock()
	if msg.From == -1 {
		// Any driver frame refreshes the return path for requestor
		// traffic (a reconnecting driver supersedes the old one).
		t.reqConn = via
	}
	switch msg.Kind {
	case MsgJob, MsgStatsReq, MsgQuit:
		t.mu.Unlock()
		t.control.Put(msg)
	case MsgKill:
		var inbox *Mailbox
		if t.self >= 0 && t.alive[t.self] {
			t.alive[t.self] = false
			inbox = t.inbox
		}
		t.mu.Unlock()
		if inbox != nil {
			inbox.Close()
		}
		t.control.Put(msg)
	case MsgRevive:
		if t.self >= 0 && !t.alive[t.self] {
			t.alive[t.self] = true
			t.inbox = NewMailbox()
		}
		t.mu.Unlock()
		t.control.Put(msg)
	default:
		if t.self < 0 || msg.Job != t.gen || !t.alive[t.self] {
			t.mu.Unlock()
			return // unconfigured, stale generation, or dead: drop
		}
		inbox, self := t.inbox, t.self
		t.mu.Unlock()
		if msg.From >= 0 && msg.From != self {
			t.metrics.BytesReceived[self].Add(int64(frameLen + tcpFrameHeader))
		}
		// Flow-control side effects: peer punctuation installs the send
		// window it grants this node; MsgStart/MsgRound reset all windows.
		t.credits.observe(msg)
		inbox.Put(msg)
	}
}

// conn returns (dialing if needed) the shared outbound connection to addr.
func (t *TCPTransport) conn(addr string) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("cluster: transport closed")
	}
	if tc := t.conns[addr]; tc != nil {
		t.mu.Unlock()
		return tc, nil
	}
	t.mu.Unlock()
	nc, err := net.DialTimeout("tcp", addr, tcpDialTimeout)
	if err != nil {
		return nil, err
	}
	tc := &tcpConn{c: nc}
	t.mu.Lock()
	if exist := t.conns[addr]; exist != nil {
		t.mu.Unlock()
		_ = nc.Close()
		return exist, nil
	}
	if t.closed {
		t.mu.Unlock()
		_ = nc.Close()
		return nil, fmt.Errorf("cluster: transport closed")
	}
	t.conns[addr] = tc
	t.mu.Unlock()
	// Responses can flow back on the same connection (the driver never
	// listens; workers answer on whatever link the frame arrived on). On
	// the driver the connection's loss doubles as the node-death signal.
	downAddr := ""
	if t.driver {
		downAddr = addr
	}
	go t.readLoop(nc, tc, downAddr)
	return tc, nil
}

// write frames and ships one encoded message to addr. A failed write on a
// cached connection is retried exactly once on a fresh dial: after a
// daemon is respawned on the same address, every process that talked to
// its predecessor still holds a dead cached connection, and without the
// retry the first frame to the new process — a recovery MsgStart, a
// shuffle batch — would be silently lost. If the fresh dial (or its
// write) also fails, the process behind the address is really gone.
func (t *TCPTransport) write(addr string, frame []byte) error {
	tc, err := t.conn(addr)
	if err != nil {
		// No connection was ever established, so no read loop exists to
		// observe the death: a driver must report it here or a daemon that
		// died before the first dial would hang the requestor forever.
		t.nodeDown(addr)
		return err
	}
	werr := writeConn(tc, frame)
	if werr == nil {
		return nil
	}
	t.dropConn(addr, tc)
	if tc, err = t.conn(addr); err != nil {
		t.nodeDown(addr)
		return err
	}
	if werr = writeConn(tc, frame); werr != nil {
		t.dropConn(addr, tc)
		// The fresh connection's read loop reports the death.
		return werr
	}
	return nil
}

// dropConn closes a broken connection and evicts it from the dial cache
// (unless a newer connection already replaced it).
func (t *TCPTransport) dropConn(addr string, tc *tcpConn) {
	_ = tc.c.Close()
	t.mu.Lock()
	if t.conns[addr] == tc {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
}

// writeConn writes one length-prefixed frame under the connection lock.
func writeConn(tc *tcpConn, frame []byte) error {
	buf := make([]byte, tcpFrameHeader+len(frame))
	binary.BigEndian.PutUint32(buf, uint32(len(frame)))
	copy(buf[tcpFrameHeader:], frame)
	tc.mu.Lock()
	defer tc.mu.Unlock()
	_, err := tc.c.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame, rejecting absurd lengths
// before allocating.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [tcpFrameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > tcpMaxFrame {
		return nil, fmt.Errorf("cluster: tcp frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
