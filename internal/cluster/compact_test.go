package cluster

import (
	"testing"

	"github.com/rex-data/rex/internal/types"
)

func keyCol0(t types.Tuple) types.Value { return t[0] }

// sumCol1 merges two δ() deltas by summing column 1 (key in column 0).
func sumCol1(a, b types.Delta) (types.Delta, bool) {
	af, aok := types.AsFloat(a.Tup[1])
	bf, bok := types.AsFloat(b.Tup[1])
	if !aok || !bok {
		return a, false
	}
	return types.Update(types.NewTuple(a.Tup[0], af+bf)), true
}

func TestCompactorAnnihilation(t *testing.T) {
	c := NewCompactor(keyCol0, nil)
	tup := types.NewTuple(int64(1), "x")
	c.Add(types.Insert(tup))
	c.Add(types.Delete(tup))
	if c.Len() != 0 {
		t.Fatalf("live = %d after +/− annihilation", c.Len())
	}
	if got := c.Drain(); len(got) != 0 {
		t.Fatalf("drain = %v, want empty", got)
	}
	added, annihilated, _ := c.Stats()
	if added != 2 || annihilated != 2 {
		t.Fatalf("stats: added=%d annihilated=%d", added, annihilated)
	}
}

func TestCompactorNoFalseAnnihilation(t *testing.T) {
	// A delete of a *different* tuple under the same key must survive.
	c := NewCompactor(keyCol0, nil)
	c.Add(types.Insert(types.NewTuple(int64(1), "x")))
	c.Add(types.Delete(types.NewTuple(int64(1), "y")))
	if got := c.Drain(); len(got) != 2 {
		t.Fatalf("drain = %v, want both deltas", got)
	}
}

func TestCompactorUpsertAndChainFolding(t *testing.T) {
	a := types.NewTuple(int64(1), "a")
	b := types.NewTuple(int64(1), "b")
	cc := types.NewTuple(int64(1), "c")

	// +(a) then →(a⇒b) folds to +(b).
	c := NewCompactor(keyCol0, nil)
	c.Add(types.Insert(a))
	c.Add(types.Replace(a, b))
	got := c.Drain()
	if len(got) != 1 || got[0].Op != types.OpInsert || !got[0].Tup.Equal(b) {
		t.Fatalf("upsert folding: %v", got)
	}

	// →(a⇒b) then →(b⇒c) folds to →(a⇒c).
	c = NewCompactor(keyCol0, nil)
	c.Add(types.Replace(a, b))
	c.Add(types.Replace(b, cc))
	got = c.Drain()
	if len(got) != 1 || got[0].Op != types.OpReplace || !got[0].Old.Equal(a) || !got[0].Tup.Equal(cc) {
		t.Fatalf("chain folding: %v", got)
	}

	// →(a⇒b) then −(b) folds to −(a).
	c = NewCompactor(keyCol0, nil)
	c.Add(types.Replace(a, b))
	c.Add(types.Delete(b))
	got = c.Drain()
	if len(got) != 1 || got[0].Op != types.OpDelete || !got[0].Tup.Equal(a) {
		t.Fatalf("retraction folding: %v", got)
	}
}

func TestCompactorMergesUpdates(t *testing.T) {
	c := NewCompactor(keyCol0, sumCol1)
	c.Add(types.Update(types.NewTuple(int64(1), 1.5)))
	c.Add(types.Update(types.NewTuple(int64(2), 10.0)))
	c.Add(types.Update(types.NewTuple(int64(1), 2.5)))
	c.Add(types.Update(types.NewTuple(int64(1), -1.0)))
	got := c.Drain()
	if len(got) != 2 {
		t.Fatalf("drain = %v, want 2 merged deltas", got)
	}
	byKey := map[int64]float64{}
	for _, d := range got {
		k, _ := types.AsInt(d.Tup[0])
		v, _ := types.AsFloat(d.Tup[1])
		byKey[k] = v
	}
	if byKey[1] != 3.0 || byKey[2] != 10.0 {
		t.Fatalf("merged values: %v", byKey)
	}
	if c.Len() != 0 {
		t.Fatal("drain must reset")
	}
	// Without a merge function, updates pass through unmerged.
	c = NewCompactor(keyCol0, nil)
	c.Add(types.Update(types.NewTuple(int64(1), 1.5)))
	c.Add(types.Update(types.NewTuple(int64(1), 2.5)))
	if got := c.Drain(); len(got) != 2 {
		t.Fatalf("no-merge drain = %v", got)
	}
}

func TestCompactorKeepsPerKeyOrder(t *testing.T) {
	c := NewCompactor(keyCol0, nil)
	a1 := types.NewTuple(int64(1), "a1")
	a2 := types.NewTuple(int64(1), "a2")
	b1 := types.NewTuple(int64(2), "b1")
	c.Add(types.Insert(a1))
	c.Add(types.Insert(b1))
	c.Add(types.Replace(a1, a2)) // folds into the first slot
	got := c.Drain()
	if len(got) != 2 {
		t.Fatalf("drain = %v", got)
	}
	if got[0].Op != types.OpInsert || !got[0].Tup.Equal(a2) {
		t.Fatalf("key 1 should fold to +(a2): %v", got)
	}
	if !got[1].Tup.Equal(b1) {
		t.Fatalf("key 2 delta lost: %v", got)
	}
}

// Kill/Revive vs in-flight encoded batches: sends to a dead destination
// must neither panic nor leak previously buffered frames into the revived
// node's fresh mailbox.
func TestKillReviveWithInFlightBatches(t *testing.T) {
	tr := NewInProcTransport(3)
	batch := types.Inserts(
		types.NewTuple(int64(1), "payload", 2.5),
		types.NewTuple(int64(2), "payload", 3.5),
	)
	// Queue several encoded batches at node 1 without consuming them.
	for i := 0; i < 4; i++ {
		tr.SendData(0, 1, 5, i, 0, batch)
	}
	if got := tr.InboxLen(1); got != 4 {
		t.Fatalf("in-flight frames = %d, want 4", got)
	}

	tr.Kill(1)
	if fail, ok := tr.Requestor().Get(); !ok || fail.Kind != MsgFailure {
		t.Fatal("missing failure notification")
	}
	// Dead destination: sends must not panic; sender still pays the bytes
	// (the network drops the frame, the NIC already shipped it).
	before := tr.Metrics().BytesSent[0].Load()
	tr.SendData(0, 1, 5, 9, 0, batch)
	if tr.Metrics().BytesSent[0].Load() <= before {
		t.Fatal("sender must account bytes even to a dead destination")
	}
	if got := tr.InboxLen(1); got != 0 {
		t.Fatalf("dead inbox reports %d queued", got)
	}

	tr.Revive(1)
	// The revived node starts with a fresh mailbox: the pre-failure
	// buffered frames are gone, not leaked into the new epoch.
	if got := tr.InboxLen(1); got != 0 {
		t.Fatalf("revived inbox has %d leaked frames", got)
	}
	tr.SendData(0, 1, 5, 10, 0, batch)
	msg, ok := tr.Inbox(1).Get()
	if !ok || msg.Kind != MsgData || msg.Stratum != 10 {
		t.Fatalf("post-revive delivery: %+v %v", msg, ok)
	}
	decoded, err := DecodeDeltas(msg.Payload)
	if err != nil || len(decoded) != len(batch) {
		t.Fatalf("post-revive decode: %v %v", decoded, err)
	}
}

// Heavy insert+delete churn keeps the live count near zero; the physical
// buffer must still be observable via Buffered so callers can flush and
// reclaim the annihilated slots.
func TestCompactorBufferedGrowsUnderChurn(t *testing.T) {
	c := NewCompactor(keyCol0, nil)
	for i := 0; i < 100; i++ {
		tup := types.NewTuple(int64(i), "x")
		c.Add(types.Insert(tup))
		c.Add(types.Delete(tup))
	}
	if c.Len() != 0 {
		t.Fatalf("live = %d, want 0", c.Len())
	}
	if c.Buffered() != 100 {
		t.Fatalf("buffered = %d, want 100 annihilated slots", c.Buffered())
	}
	if got := c.Drain(); len(got) != 0 {
		t.Fatalf("drain = %v", got)
	}
	if c.Buffered() != 0 {
		t.Fatalf("buffered = %d after drain", c.Buffered())
	}
}
