package cluster

import (
	"sync"
	"time"
)

// Credit-based flow control for the shuffle path. The old backpressure
// signal — a sender probing the destination mailbox's depth — only worked
// when sender and receiver shared a process; over sockets a peer's queue
// is unobservable. Credits invert the direction of the signal so it works
// on every transport: each receiver grants its peers an explicit window of
// data-frame sends, piggybacked on the punctuation frames the protocol
// already exchanges at every stratum boundary, and senders spend from the
// granted window instead of probing. MsgStart and MsgRound reset all
// windows to the initial default, so each query (and each standing-query
// ingestion round) begins with full windows and stale grants from a prior
// round cannot throttle the next one.

// InitialCredits is the send window every (sender, receiver) pair holds
// before the first grant arrives — and again after each MsgStart/MsgRound
// reset. A window counts shipped batches, not bytes: with the default
// batch size it bounds the uncoalesced in-flight volume per link while
// leaving the first strata free to run before any grant has circulated.
const InitialCredits = 16

// creditBook tracks per-(sender, receiver) send windows. Both transports
// embed one: InProcTransport intercepts grants as frames pass its
// simulated links; a TCP node installs grants as frames arrive off its
// sockets (the driver never shuffles, so its book stays empty).
type creditBook struct {
	mu  sync.Mutex
	win map[creditPair]int
}

type creditPair struct{ from, to NodeID }

// credits reports the remaining window, InitialCredits when no grant has
// been installed for the pair.
func (b *creditBook) credits(from, to NodeID) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if w, ok := b.win[creditPair{from, to}]; ok {
		return w
	}
	return InitialCredits
}

// grant installs an absolute window: receiver `to` allows sender `from` w
// further data-frame sends. Grants replace (never add to) the window, so
// repeated grants — one per rehash edge per stratum — are idempotent and a
// lost grant only delays the refresh until the next punctuation.
func (b *creditBook) grant(from, to NodeID, w int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.win == nil {
		b.win = map[creditPair]int{}
	}
	b.win[creditPair{from, to}] = w
}

// spend consumes n credits from the pair's window, flooring at zero (an
// overflow-forced flush may legitimately overdraw).
func (b *creditBook) spend(from, to NodeID, n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.win == nil {
		b.win = map[creditPair]int{}
	}
	k := creditPair{from, to}
	w, ok := b.win[k]
	if !ok {
		w = InitialCredits
	}
	w -= n
	if w < 0 {
		w = 0
	}
	b.win[k] = w
}

// reset clears every window back to InitialCredits (the MsgStart/MsgRound
// barrier semantics).
func (b *creditBook) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.win = nil
}

// observe applies one delivered frame's flow-control side effects to the
// book: punctuation grants install windows, start/round barriers reset
// them. Called by both transports on the receiving side of a link —
// including the requestor's side, where MsgCreditAck grants (From=worker,
// To=-1) re-arm the standing-query pump's MsgIngest staging windows.
func (b *creditBook) observe(msg Message) {
	switch {
	case msg.Kind == MsgStart || msg.Kind == MsgRound:
		b.reset()
	case msg.CreditGrant && msg.From >= 0:
		// From punctuated (or acked); To is being granted a window for
		// sending back.
		b.grant(msg.To, msg.From, msg.Credits)
	}
}

// Adaptive credit windows. A static high-water constant sizes every grant
// the same regardless of how fast the receiver actually drains; the
// DrainMeter replaces it with a measured signal. Each worker meters the
// deltas it applies between punctuation marks, folds the instantaneous
// rate into an EWMA, and sizes outgoing grants as "the number of batches
// I can absorb over the next horizon". Fast consumers open senders up;
// slow ones throttle them early — before the inbox backlog the old
// constant reacted to has even formed.
const (
	// MinCreditWindow / MaxCreditWindow clamp adaptive grants: the floor
	// keeps a momentarily idle (zero-rate) receiver from closing a link
	// entirely, the ceiling bounds in-flight volume per link no matter
	// how fast the drain looks.
	MinCreditWindow = 2
	MaxCreditWindow = 256

	// drainAlpha is the EWMA smoothing factor for the drain rate.
	drainAlpha = 0.3
	// drainHorizon is how far ahead a grant provisions: a window covers
	// the deltas the receiver expects to absorb over this span.
	drainHorizon = 100 * time.Millisecond
	// drainMinSample ignores punctuation intervals too short to divide
	// by meaningfully; their deltas roll into the next interval.
	drainMinSample = 2 * time.Millisecond
)

// DrainMeter measures one worker's delta drain rate: an EWMA of deltas
// applied per unit time between punctuation marks. Workers keep one per
// event loop and size every credit grant from it.
type DrainMeter struct {
	mu      sync.Mutex
	applied int       // deltas applied since the last mark
	last    time.Time // previous punctuation mark
	rate    float64   // EWMA, deltas per second
}

// Observe records n deltas applied by the owning worker.
func (m *DrainMeter) Observe(n int) {
	m.mu.Lock()
	m.applied += n
	m.mu.Unlock()
}

// Mark folds the deltas applied since the previous mark into the EWMA
// rate. Workers call it at punctuation boundaries — the protocol's
// natural clock ticks.
func (m *DrainMeter) Mark(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.last.IsZero() {
		m.last = now
		m.applied = 0
		return
	}
	elapsed := now.Sub(m.last)
	if elapsed < drainMinSample {
		return // roll these deltas into the next interval
	}
	inst := float64(m.applied) / elapsed.Seconds()
	if m.rate == 0 {
		m.rate = inst
	} else {
		m.rate = drainAlpha*inst + (1-drainAlpha)*m.rate
	}
	m.last = now
	m.applied = 0
}

// Rate reports the current EWMA drain rate in deltas per second (zero
// before the first complete sample).
func (m *DrainMeter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rate
}

// Window sizes a credit grant from the measured drain rate: the number
// of batchSize-delta batches this worker expects to absorb over the
// drain horizon, clamped to [MinCreditWindow, MaxCreditWindow]. Before
// the first measurement it falls back to the caller's static default
// (clamped the same way), so cold starts behave exactly like the old
// high-water constant.
func (m *DrainMeter) Window(batchSize, fallback int) int {
	if batchSize <= 0 {
		batchSize = 1
	}
	m.mu.Lock()
	rate := m.rate
	m.mu.Unlock()
	w := fallback
	if rate > 0 {
		w = int(rate * drainHorizon.Seconds() / float64(batchSize))
	}
	if w < MinCreditWindow {
		w = MinCreditWindow
	}
	if w > MaxCreditWindow {
		w = MaxCreditWindow
	}
	return w
}
