package cluster

import "sync"

// Credit-based flow control for the shuffle path. The old backpressure
// signal — a sender probing the destination mailbox's depth — only worked
// when sender and receiver shared a process; over sockets a peer's queue
// is unobservable. Credits invert the direction of the signal so it works
// on every transport: each receiver grants its peers an explicit window of
// data-frame sends, piggybacked on the punctuation frames the protocol
// already exchanges at every stratum boundary, and senders spend from the
// granted window instead of probing. MsgStart and MsgRound reset all
// windows to the initial default, so each query (and each standing-query
// ingestion round) begins with full windows and stale grants from a prior
// round cannot throttle the next one.

// InitialCredits is the send window every (sender, receiver) pair holds
// before the first grant arrives — and again after each MsgStart/MsgRound
// reset. A window counts shipped batches, not bytes: with the default
// batch size it bounds the uncoalesced in-flight volume per link while
// leaving the first strata free to run before any grant has circulated.
const InitialCredits = 16

// creditBook tracks per-(sender, receiver) send windows. Both transports
// embed one: InProcTransport intercepts grants as frames pass its
// simulated links; a TCP node installs grants as frames arrive off its
// sockets (the driver never shuffles, so its book stays empty).
type creditBook struct {
	mu  sync.Mutex
	win map[creditPair]int
}

type creditPair struct{ from, to NodeID }

// credits reports the remaining window, InitialCredits when no grant has
// been installed for the pair.
func (b *creditBook) credits(from, to NodeID) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if w, ok := b.win[creditPair{from, to}]; ok {
		return w
	}
	return InitialCredits
}

// grant installs an absolute window: receiver `to` allows sender `from` w
// further data-frame sends. Grants replace (never add to) the window, so
// repeated grants — one per rehash edge per stratum — are idempotent and a
// lost grant only delays the refresh until the next punctuation.
func (b *creditBook) grant(from, to NodeID, w int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.win == nil {
		b.win = map[creditPair]int{}
	}
	b.win[creditPair{from, to}] = w
}

// spend consumes n credits from the pair's window, flooring at zero (an
// overflow-forced flush may legitimately overdraw).
func (b *creditBook) spend(from, to NodeID, n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.win == nil {
		b.win = map[creditPair]int{}
	}
	k := creditPair{from, to}
	w, ok := b.win[k]
	if !ok {
		w = InitialCredits
	}
	w -= n
	if w < 0 {
		w = 0
	}
	b.win[k] = w
}

// reset clears every window back to InitialCredits (the MsgStart/MsgRound
// barrier semantics).
func (b *creditBook) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.win = nil
}

// observe applies one delivered frame's flow-control side effects to the
// book: punctuation grants install windows, start/round barriers reset
// them. Called by both transports on the receiving side of a link.
func (b *creditBook) observe(msg Message) {
	switch {
	case msg.Kind == MsgStart || msg.Kind == MsgRound:
		b.reset()
	case msg.CreditGrant && msg.From >= 0:
		// From punctuated; To is being granted a window for sending back.
		b.grant(msg.To, msg.From, msg.Credits)
	}
}
