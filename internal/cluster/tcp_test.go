package cluster

import (
	"bytes"
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/rex-data/rex/internal/types"
)

// getTimeout polls a mailbox so a broken delivery path fails the test
// instead of hanging it.
func getTimeout(t *testing.T, m *Mailbox, what string) Message {
	t.Helper()
	done := make(chan Message, 1)
	go func() {
		if msg, ok := m.Get(); ok {
			done <- msg
		}
	}()
	select {
	case msg := <-done:
		return msg
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
		return Message{}
	}
}

// tcpPair builds a configured node transport and a driver attached to it
// (single-node cluster over loopback).
func tcpPair(t *testing.T) (*TCPTransport, *TCPTransport) {
	t.Helper()
	node, err := ListenTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	drv, err := NewTCPDriver([]string{node.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = drv.Close() })
	gen, err := drv.StartJob([]byte("job"))
	if err != nil {
		t.Fatal(err)
	}
	jobMsg := getTimeout(t, node.Control(), "job frame")
	if jobMsg.Kind != MsgJob || jobMsg.Job != gen || string(jobMsg.Payload) != "job" {
		t.Fatalf("job frame: %+v", jobMsg)
	}
	if err := node.Configure(0, []string{node.Addr()}, jobMsg.Job); err != nil {
		t.Fatal(err)
	}
	return node, drv
}

func TestTCPRoundTripAndAccounting(t *testing.T) {
	node, drv := tcpPair(t)

	// Driver control frame → node inbox.
	drv.Send(Message{From: -1, To: 0, Kind: MsgStart, Epoch: 3})
	msg := getTimeout(t, node.Inbox(0), "start frame")
	if msg.Kind != MsgStart || msg.Epoch != 3 {
		t.Fatalf("start: %+v", msg)
	}
	// Control-plane traffic is never counted.
	if drv.Metrics().TotalBytesSent() != 0 {
		t.Fatal("driver control traffic must not count as wire bytes")
	}

	// Node → requestor (vote path).
	node.SendToRequestor(Message{From: 0, Kind: MsgVote, Count: 9})
	vote := getTimeout(t, drv.Requestor(), "vote")
	if vote.Kind != MsgVote || vote.Count != 9 || vote.From != 0 {
		t.Fatalf("vote: %+v", vote)
	}

	// Loopback data skips socket and counters; the batch still arrives.
	batch := types.Inserts(types.NewTuple(int64(7), "x"))
	node.SendData(0, 0, 5, 1, 0, batch)
	data := getTimeout(t, node.Inbox(0), "loopback batch")
	if data.Kind != MsgData || data.Edge != 5 {
		t.Fatalf("loopback: %+v", data)
	}
	if node.Metrics().BytesSent[0].Load() != 0 {
		t.Fatal("loopback must not count")
	}

	// Stats round trip installs remote counters on the driver.
	node.Metrics().BytesSent[0].Store(1234)
	node.Metrics().CompactIn[0].Store(11)
	if err := drv.applyStats(0, node.StatsPayload()); err != nil {
		t.Fatal(err)
	}
	if drv.Metrics().BytesSent[0].Load() != 1234 || drv.Metrics().CompactIn[0].Load() != 11 {
		t.Fatal("stats did not transfer")
	}
}

func TestTCPKillReviveDropsTraffic(t *testing.T) {
	node, drv := tcpPair(t)

	drv.Kill(0)
	fail := getTimeout(t, drv.Requestor(), "failure notification")
	if fail.Kind != MsgFailure || fail.From != 0 {
		t.Fatalf("failure: %+v", fail)
	}
	if drv.Alive(0) || len(drv.AliveNodes()) != 0 {
		t.Fatal("driver still believes node 0 alive")
	}
	// Kill is processed by the node's reader; wait for the control echo.
	kill := getTimeout(t, node.Control(), "kill control")
	if kill.Kind != MsgKill {
		t.Fatalf("control: %+v", kill)
	}
	if node.Alive(0) {
		t.Fatal("node did not mark itself dead")
	}
	if node.Inbox(0) != nil {
		if _, ok := node.Inbox(0).Get(); ok {
			t.Fatal("dead inbox must drain closed")
		}
	}
	// A dead node sends nothing.
	node.SendToRequestor(Message{From: 0, Kind: MsgVote})
	drv.Revive(0)
	revive := getTimeout(t, node.Control(), "revive control")
	if revive.Kind != MsgRevive {
		t.Fatalf("control: %+v", revive)
	}
	if !node.Alive(0) || !drv.Alive(0) {
		t.Fatal("revive did not restore the node")
	}
	// The re-armed inbox delivers again.
	drv.Send(Message{From: -1, To: 0, Kind: MsgDecision, Stratum: 4})
	dec := getTimeout(t, node.Inbox(0), "post-revive decision")
	if dec.Kind != MsgDecision || dec.Stratum != 4 {
		t.Fatalf("decision: %+v", dec)
	}
	// The suppressed dead-node vote must not surface later.
	drv.Send(Message{From: -1, To: 0, Kind: MsgShutdown})
	sd := getTimeout(t, node.Inbox(0), "shutdown")
	if sd.Kind != MsgShutdown {
		t.Fatalf("expected shutdown, got stale %+v", sd)
	}
}

func TestTCPStaleGenerationDropped(t *testing.T) {
	node, drv := tcpPair(t)
	// Next generation: frames stamped with the old one must not reach
	// the new inbox.
	if _, err := drv.StartJob([]byte("job2")); err != nil {
		t.Fatal(err)
	}
	jobMsg := getTimeout(t, node.Control(), "job2")
	if err := node.Configure(0, []string{node.Addr()}, jobMsg.Job); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a stale-generation data frame straight onto the socket.
	stale := EncodeFrame(Message{From: 1, To: 0, Kind: MsgData, Job: jobMsg.Job - 1})
	fresh := EncodeFrame(Message{From: -1, To: 0, Kind: MsgDecision, Job: jobMsg.Job, Stratum: 8})
	nc, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	for _, frame := range [][]byte{stale, fresh} {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
		if _, err := nc.Write(append(hdr[:], frame...)); err != nil {
			t.Fatal(err)
		}
	}
	got := getTimeout(t, node.Inbox(0), "fresh frame")
	if got.Kind != MsgDecision || got.Stratum != 8 {
		t.Fatalf("stale frame leaked through: %+v", got)
	}
}

// TestTCPUnconfiguredNodeCanReportErrors: a daemon whose job failed
// before Configure (so self is still -1 and the local generation stale)
// must still get an error frame back to the driver — SendControl bypasses
// the alive/configured checks and echoes the failing job's generation so
// the driver's stale-frame filter admits it.
func TestTCPUnconfiguredNodeCanReportErrors(t *testing.T) {
	node, err := ListenTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	drv, err := NewTCPDriver([]string{node.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = drv.Close() })
	gen, err := drv.StartJob([]byte("broken job payload"))
	if err != nil {
		t.Fatal(err)
	}
	jobMsg := getTimeout(t, node.Control(), "job frame")
	// Deliberately skip Configure: reply as the daemon's error path does.
	node.SendControl(Message{From: jobMsg.To, Kind: MsgError, Table: "bad spec", Job: jobMsg.Job})
	errMsg := getTimeout(t, drv.Requestor(), "error reply")
	if errMsg.Kind != MsgError || errMsg.Table != "bad spec" || errMsg.Job != gen {
		t.Fatalf("error reply: %+v", errMsg)
	}
}

func TestReadFrameHardening(t *testing.T) {
	// Oversized length must be rejected before allocation.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], tcpMaxFrame+1)
	buf.Write(hdr[:])
	if _, err := readFrame(&buf); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("oversized frame: %v", err)
	}
	// Zero length is never legal (frames have at least a header byte).
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 0)
	buf.Write(hdr[:])
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// Truncated body errors instead of blocking forever.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 10)
	buf.Write(hdr[:])
	buf.Write([]byte("abc"))
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// A well-formed frame round-trips.
	frame := EncodeFrame(Message{From: 2, To: 1, Kind: MsgPunct, Stratum: 6, Job: 3})
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	buf.Write(hdr[:])
	buf.Write(frame)
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := DecodeFrame(got)
	if err != nil || msg.Kind != MsgPunct || msg.Stratum != 6 || msg.Job != 3 {
		t.Fatalf("round trip: %+v %v", msg, err)
	}
}

// TestTCPMalformedFramePoisonsConn: a frame that fails decode kills the
// connection (framing cannot resynchronize), but a fresh connection still
// works — the daemon survives garbage input.
func TestTCPMalformedFramePoisonsConn(t *testing.T) {
	node, drv := tcpPair(t)
	nc, err := net.Dial("tcp", node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	garbage := []byte{0xFF, 0xFF, 0xFF}
	binary.BigEndian.PutUint32(hdr[:], uint32(len(garbage)))
	if _, err := nc.Write(append(hdr[:], garbage...)); err != nil {
		t.Fatal(err)
	}
	// The reader should close the poisoned connection.
	_ = nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	one := make([]byte, 1)
	if _, err := nc.Read(one); err == nil {
		t.Fatal("poisoned connection left open")
	}
	_ = nc.Close()
	// Healthy traffic still flows on the driver's own connection.
	drv.Send(Message{From: -1, To: 0, Kind: MsgStart, Epoch: 1})
	msg := getTimeout(t, node.Inbox(0), "post-garbage start")
	if msg.Kind != MsgStart {
		t.Fatalf("start: %+v", msg)
	}
}

func TestMailboxReleasesDrainedPrefix(t *testing.T) {
	m := NewMailbox()
	// Interleaved puts/gets must preserve FIFO order while the head
	// index compacts the backing array.
	next, got := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 37; i++ {
			m.Put(Message{Count: next, Payload: make([]byte, 1024)})
			next++
		}
		for i := 0; i < 31; i++ {
			msg, ok := m.Get()
			if !ok || msg.Count != got {
				t.Fatalf("round %d: got %d (ok=%v), want %d", round, msg.Count, ok, got)
			}
			got++
		}
		if want := next - got; m.Len() != want {
			t.Fatalf("round %d: len=%d want %d", round, m.Len(), want)
		}
	}
	for got < next {
		msg, ok := m.Get()
		if !ok || msg.Count != got {
			t.Fatalf("drain: got %d (ok=%v), want %d", msg.Count, ok, got)
		}
		got++
	}
	if m.Len() != 0 {
		t.Fatalf("drained mailbox reports len %d", m.Len())
	}
	// After a full drain the queue must have reset its head (the
	// backing array is reused from index 0, not grown forever).
	if m.head != 0 || len(m.queue) != 0 {
		t.Fatalf("queue not compacted: head=%d len=%d", m.head, len(m.queue))
	}
}
