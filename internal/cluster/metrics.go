package cluster

import "sync/atomic"

// Metrics aggregates transport statistics. The bandwidth figures of §6.5
// read BytesSent: "we measured the total amount of data sent by each node".
// BytesSent counts encoded frame bytes — the measured wire volume, not an
// estimate (on TCP, including the length prefix the socket actually
// carries). CompactIn/CompactOut count deltas entering and leaving the
// shuffle compactors, so callers can report the compaction ratio.
type Metrics struct {
	BytesSent     []atomic.Int64
	BytesReceived []atomic.Int64
	MessagesSent  []atomic.Int64
	TuplesSent    []atomic.Int64
	CompactIn     []atomic.Int64
	CompactOut    []atomic.Int64
}

// NewMetrics sizes counters for n nodes.
func NewMetrics(n int) *Metrics {
	return &Metrics{
		BytesSent:     make([]atomic.Int64, n),
		BytesReceived: make([]atomic.Int64, n),
		MessagesSent:  make([]atomic.Int64, n),
		TuplesSent:    make([]atomic.Int64, n),
		CompactIn:     make([]atomic.Int64, n),
		CompactOut:    make([]atomic.Int64, n),
	}
}

// TotalBytesSent sums sent bytes over all nodes.
func (m *Metrics) TotalBytesSent() int64 {
	var t int64
	for i := range m.BytesSent {
		t += m.BytesSent[i].Load()
	}
	return t
}

// TotalCompaction sums the shuffle compactor in/out delta counts.
func (m *Metrics) TotalCompaction() (in, out int64) {
	for i := range m.CompactIn {
		in += m.CompactIn[i].Load()
		out += m.CompactOut[i].Load()
	}
	return in, out
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	for i := range m.BytesSent {
		m.BytesSent[i].Store(0)
		m.BytesReceived[i].Store(0)
		m.MessagesSent[i].Store(0)
		m.TuplesSent[i].Store(0)
		m.CompactIn[i].Store(0)
		m.CompactOut[i].Store(0)
	}
}
