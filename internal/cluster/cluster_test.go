package cluster

import (
	"sync"
	"testing"
	"testing/quick"

	"github.com/rex-data/rex/internal/types"
)

func TestRingOwnersDistinctAndStable(t *testing.T) {
	r := NewRing(5, 64, 3)
	if r.Replication() != 3 || len(r.Nodes()) != 5 {
		t.Fatal("ring metadata")
	}
	for h := uint64(0); h < 1000; h += 37 {
		owners := r.Owners(splitmix64(h))
		if len(owners) != 3 {
			t.Fatalf("want 3 owners, got %v", owners)
		}
		seen := map[NodeID]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner in %v", owners)
			}
			seen[o] = true
		}
		// stability
		again := r.Owners(splitmix64(h))
		for i := range owners {
			if owners[i] != again[i] {
				t.Fatal("owners not deterministic")
			}
		}
	}
}

func TestRingReplicationCap(t *testing.T) {
	r := NewRing(2, 16, 5)
	if r.Replication() != 2 {
		t.Fatal("replication must cap at node count")
	}
	if got := len(r.Owners(12345)); got != 2 {
		t.Fatalf("owners = %d", got)
	}
}

func TestRingBalance(t *testing.T) {
	// With enough virtual nodes the primary-ownership distribution should
	// be roughly balanced (the ablation DESIGN.md calls out).
	r := NewRing(8, 128, 1)
	counts := map[NodeID]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Owners(types.HashValue(int64(i)))[0]]++
	}
	want := keys / 8
	for n, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("node %d owns %d keys, want within [%d,%d]", n, c, want/2, want*2)
		}
	}
}

func TestSnapshotFailover(t *testing.T) {
	r := NewRing(4, 64, 2)
	snap := NewSnapshot(r, []NodeID{0, 1, 2, 3})
	h := types.HashValue(int64(42))
	primary, err := snap.Primary(h)
	if err != nil {
		t.Fatal(err)
	}
	owners := r.Owners(h)
	if primary != owners[0] {
		t.Fatal("primary must be first owner when all alive")
	}
	// Kill the primary: the replica takes over.
	snap2 := snap.Without(primary)
	if snap2.Alive(primary) {
		t.Fatal("Without must remove node")
	}
	p2, err := snap2.Primary(h)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != owners[1] {
		t.Fatalf("takeover should be the replica %v, got %v", owners[1], p2)
	}
	if got := len(snap2.AliveNodes()); got != 3 {
		t.Fatalf("alive nodes = %d", got)
	}
	// Even with every configured owner dead, Primary falls back to some
	// alive node rather than failing.
	s := snap
	for _, o := range owners {
		s = s.Without(o)
	}
	if _, err := s.Primary(h); err != nil {
		t.Fatalf("fallback primary: %v", err)
	}
	reps := snap2.Replicas(h)
	for _, n := range reps {
		if !snap2.Alive(n) {
			t.Fatal("replicas must be alive")
		}
	}
}

// Property: every key has exactly min(replication, n) distinct owners and
// the primary is always among them.
func TestRingOwnersProperty(t *testing.T) {
	r := NewRing(7, 32, 3)
	snap := NewSnapshot(r, r.Nodes())
	f := func(key int64) bool {
		h := types.HashValue(key)
		owners := r.Owners(h)
		if len(owners) != 3 {
			return false
		}
		p, err := snap.Primary(h)
		return err == nil && p == owners[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxFIFOAndClose(t *testing.T) {
	m := NewMailbox()
	for i := 0; i < 5; i++ {
		m.Put(Message{Count: i})
	}
	if m.Len() != 5 {
		t.Fatal("len")
	}
	for i := 0; i < 5; i++ {
		msg, ok := m.Get()
		if !ok || msg.Count != i {
			t.Fatalf("FIFO violated at %d: %v %v", i, msg.Count, ok)
		}
	}
	done := make(chan bool)
	go func() {
		_, ok := m.Get()
		done <- ok
	}()
	m.Close()
	if <-done {
		t.Fatal("Get after close on empty mailbox must report closed")
	}
	m.Put(Message{}) // no-op after close
	if m.Len() != 0 {
		t.Fatal("Put after close must be dropped")
	}
}

func TestMailboxConcurrent(t *testing.T) {
	m := NewMailbox()
	const producers, each = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m.Put(Message{Count: 1})
			}
		}()
	}
	got := 0
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			msg, ok := m.Get()
			if !ok {
				return
			}
			got += msg.Count
			if got == producers*each {
				return
			}
		}
	}()
	wg.Wait()
	<-recvDone
	if got != producers*each {
		t.Fatalf("received %d of %d", got, producers*each)
	}
}

func TestTransportAccountingAndFailure(t *testing.T) {
	tr := NewInProcTransport(3)
	batch := types.Inserts(types.NewTuple(int64(1), 2.5))
	n := tr.SendData(0, 1, 7, 0, 0, batch)
	if n <= 0 {
		t.Fatal("encoded size must be positive")
	}
	msg, ok := tr.Inbox(1).Get()
	if !ok || msg.Kind != MsgData || msg.Edge != 7 {
		t.Fatalf("delivery: %+v %v", msg, ok)
	}
	decoded, err := DecodeDeltas(msg.Payload)
	if err != nil || len(decoded) != 1 || !decoded[0].Tup.Equal(batch[0].Tup) {
		t.Fatal("payload round trip")
	}
	// BytesSent counts full frame bytes: payload plus the wire header.
	sent := tr.Metrics().BytesSent[0].Load()
	if sent <= int64(n) || tr.Metrics().BytesReceived[1].Load() != sent {
		t.Fatalf("byte accounting: sent=%d payload=%d", sent, n)
	}
	// Loopback is free.
	tr.SendData(2, 2, 1, 0, 0, batch)
	if tr.Metrics().BytesSent[2].Load() != 0 {
		t.Fatal("self-send must not count as network traffic")
	}
	if _, ok := tr.Inbox(2).Get(); !ok {
		t.Fatal("self-send must still deliver")
	}
	// Failure: node 1 dies → requestor notified, sends from 1 dropped.
	tr.Kill(1)
	if tr.Alive(1) {
		t.Fatal("killed node still alive")
	}
	fail, ok := tr.Requestor().Get()
	if !ok || fail.Kind != MsgFailure || fail.From != 1 {
		t.Fatalf("failure notification: %+v", fail)
	}
	before := tr.Metrics().BytesSent[1].Load()
	tr.SendData(1, 0, 1, 0, 0, batch) // from dead node: dropped
	if tr.Metrics().BytesSent[1].Load() != before {
		t.Fatal("dead node must not send")
	}
	if got := len(tr.AliveNodes()); got != 2 {
		t.Fatalf("alive = %d", got)
	}
	tr.Kill(1) // double kill is a no-op
	tr.Revive(1)
	if !tr.Alive(1) {
		t.Fatal("revive failed")
	}
	tr.Revive(1) // no-op
}

func TestTransportBroadcastAndDecision(t *testing.T) {
	tr := NewInProcTransport(3)
	tr.Broadcast(Message{From: -1, Kind: MsgDecision, Stratum: 2, Terminate: true})
	for i := 0; i < 3; i++ {
		msg, ok := tr.Inbox(NodeID(i)).Get()
		if !ok || msg.Kind != MsgDecision || !msg.Terminate || msg.Stratum != 2 {
			t.Fatalf("node %d decision: %+v", i, msg)
		}
	}
	tr.SendToRequestor(Message{From: 2, Kind: MsgVote, Count: 5})
	msg, ok := tr.Requestor().Get()
	if !ok || msg.Kind != MsgVote || msg.Count != 5 {
		t.Fatal("vote delivery")
	}
	tr.Metrics().Reset()
	if tr.Metrics().TotalBytesSent() != 0 {
		t.Fatal("reset")
	}
	tr.CloseAll()
	if _, ok := tr.Requestor().Get(); ok {
		t.Fatal("closed requestor should drain empty")
	}
}

func TestSendOutOfRange(t *testing.T) {
	tr := NewInProcTransport(1)
	tr.Send(Message{From: 0, To: 99}) // must not panic
	tr.Send(Message{From: 0, To: -1})
}
