package cluster

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"github.com/rex-data/rex/internal/types"
)

// The wire codec gives the simulated cluster a real wire format: every
// inter-node frame is serialized to a compact binary layout before its size
// is accounted, then decoded on the receiving side, so Metrics reports
// measured — not estimated — network volume (the bandwidth figures of §6.5).
//
// Two layers:
//
//   - Frame layer: EncodeFrame/DecodeFrame serialize a whole Message
//     (header fields varint-packed, payload length-prefixed).
//   - Batch layer: two delta payload formats, discriminated by their
//     leading tag byte. EncodeDeltas/DecodeDeltas is the row format with
//     a per-batch dictionary for repeated column values (the compactor's
//     output ships through it, where the dictionary wins on the highly
//     repetitive coalesced streams). EncodeDeltaBatch is the columnar
//     format: the encoded frame IS the in-memory DeltaBatch layout, so
//     DecodeDeltaBatch only parses the O(columns) header and aliases the
//     op vector and column payloads out of the frame buffer — values
//     materialize lazily, on first operator access.

// wireVersion leads every frame; decoders reject unknown versions.
// History: 1 = PR 1 layout; 2 adds the optional credit-grant field
// (flow-control windows piggybacked on punctuation frames); 3 adds the
// columnar delta-batch payload format, the MsgCreditAck kind, and the
// optional priority field on client-facing frames (same flag+varint
// trick as credits, so it costs nothing when absent — no version bump
// needed: v3 decoders that predate it never saw the flag set).
const wireVersion = 3

// Frame flag bits.
const (
	flagTerminate = 1 << iota
	flagClosed
	// flagCreditGrant marks a frame carrying a flow-control window grant:
	// the Credits varint follows the payload. The flag (rather than an
	// always-present field) keeps the common data frame free of the cost
	// and lets an explicit zero-window grant stay distinguishable from
	// "no grant".
	flagCreditGrant
	// flagPriority marks a frame carrying a scheduling priority: the
	// Priority varint follows the payload (after the credits varint when
	// both flags are set). Only nonzero priorities are encoded — normal
	// priority is the zero value, so the common frame stays untouched.
	flagPriority
)

// EncodeFrame serializes msg to its wire representation. The payload is
// treated as opaque bytes; batch payloads are produced by EncodeDeltas.
func EncodeFrame(msg Message) []byte {
	buf := make([]byte, 0, 24+len(msg.Table)+len(msg.Payload))
	buf = append(buf, wireVersion, byte(msg.Kind))
	var flags byte
	if msg.Terminate {
		flags |= flagTerminate
	}
	if msg.Closed {
		flags |= flagClosed
	}
	if msg.CreditGrant {
		flags |= flagCreditGrant
	}
	if msg.Priority != 0 {
		flags |= flagPriority
	}
	buf = append(buf, flags)
	buf = binary.AppendVarint(buf, int64(msg.From))
	buf = binary.AppendVarint(buf, int64(msg.To))
	buf = binary.AppendVarint(buf, int64(msg.Edge))
	buf = binary.AppendVarint(buf, int64(msg.Stratum))
	buf = binary.AppendVarint(buf, int64(msg.Count))
	buf = binary.AppendVarint(buf, int64(msg.Epoch))
	buf = binary.AppendVarint(buf, int64(msg.Job))
	buf = binary.AppendUvarint(buf, uint64(len(msg.Table)))
	buf = append(buf, msg.Table...)
	buf = binary.AppendUvarint(buf, uint64(len(msg.Payload)))
	buf = append(buf, msg.Payload...)
	if msg.CreditGrant {
		buf = binary.AppendUvarint(buf, uint64(msg.Credits))
	}
	if msg.Priority != 0 {
		buf = binary.AppendVarint(buf, int64(msg.Priority))
	}
	return buf
}

// DecodeFrame decodes a frame produced by EncodeFrame.
func DecodeFrame(buf []byte) (Message, error) {
	var msg Message
	if len(buf) < 3 {
		return msg, fmt.Errorf("cluster: decode frame: short buffer (%d bytes)", len(buf))
	}
	if buf[0] != wireVersion {
		return msg, fmt.Errorf("cluster: decode frame: unknown version %d", buf[0])
	}
	msg.Kind = MsgKind(buf[1])
	msg.Terminate = buf[2]&flagTerminate != 0
	msg.Closed = buf[2]&flagClosed != 0
	msg.CreditGrant = buf[2]&flagCreditGrant != 0
	off := 3
	readInt := func(field string) (int64, error) {
		v, n := binary.Varint(buf[off:])
		if n <= 0 {
			return 0, fmt.Errorf("cluster: decode frame: bad %s varint", field)
		}
		off += n
		return v, nil
	}
	var err error
	var v int64
	if v, err = readInt("from"); err != nil {
		return msg, err
	}
	msg.From = NodeID(v)
	if v, err = readInt("to"); err != nil {
		return msg, err
	}
	msg.To = NodeID(v)
	if v, err = readInt("edge"); err != nil {
		return msg, err
	}
	msg.Edge = int(v)
	if v, err = readInt("stratum"); err != nil {
		return msg, err
	}
	msg.Stratum = int(v)
	if v, err = readInt("count"); err != nil {
		return msg, err
	}
	msg.Count = int(v)
	if v, err = readInt("epoch"); err != nil {
		return msg, err
	}
	msg.Epoch = int(v)
	if v, err = readInt("job"); err != nil {
		return msg, err
	}
	msg.Job = int(v)
	// Length fields compare as uint64 against the remaining bytes so a
	// forged huge length cannot overflow int and slip past the check.
	tl, n := binary.Uvarint(buf[off:])
	if n <= 0 || tl > uint64(len(buf)-off-n) {
		return msg, fmt.Errorf("cluster: decode frame: bad table length")
	}
	off += n
	if tl > 0 {
		msg.Table = string(buf[off : off+int(tl)])
		off += int(tl)
	}
	pl, n := binary.Uvarint(buf[off:])
	if n <= 0 || pl > uint64(len(buf)-off-n) {
		return msg, fmt.Errorf("cluster: decode frame: bad payload length")
	}
	off += n
	if pl > 0 {
		msg.Payload = buf[off : off+int(pl) : off+int(pl)]
		off += int(pl)
	}
	if msg.CreditGrant {
		cr, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return msg, fmt.Errorf("cluster: decode frame: bad credits varint")
		}
		off += n
		msg.Credits = int(cr)
	}
	if buf[2]&flagPriority != 0 {
		pr, n := binary.Varint(buf[off:])
		if n <= 0 {
			return msg, fmt.Errorf("cluster: decode frame: bad priority varint")
		}
		off += n
		msg.Priority = int(pr)
	}
	if off != len(buf) {
		return msg, fmt.Errorf("cluster: decode frame: %d trailing bytes", len(buf)-off)
	}
	return msg, nil
}

// deltaFormatDict tags a dictionary-compressed delta batch; it is outside
// the value-kind range so corrupted or legacy payloads fail loudly.
const deltaFormatDict = 0xD1

// deltaFormatCol tags a columnar delta batch (types.AppendDeltaBatch
// layout after the tag byte).
const deltaFormatCol = 0xC3

// payloadBufPool recycles encode buffers for delta payloads. The frame
// layer copies the payload into the frame buffer on every Send (both
// transports), so the payload buffer is dead the moment Send returns and
// can go straight back to the pool — the encode side of the steady-state
// O(1) allocation story.
var payloadBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// GetPayloadBuf returns an empty pooled byte buffer for payload encoding.
func GetPayloadBuf() []byte {
	return (*(payloadBufPool.Get().(*[]byte)))[:0]
}

// PutPayloadBuf returns a payload buffer to the pool. Callers must be
// done with every alias into it (Send has returned; the frame layer owns
// its own copy).
func PutPayloadBuf(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	payloadBufPool.Put(&buf)
}

// EncodeDeltaBatch appends the columnar wire encoding of b to buf.
func EncodeDeltaBatch(buf []byte, b *types.DeltaBatch) []byte {
	buf = append(buf, deltaFormatCol)
	return types.AppendDeltaBatch(buf, b)
}

// DecodeDeltasAny decodes a delta payload of either format. Columnar
// payloads return a lazily-materializing batch (aliasing buf) and a nil
// row slice; dictionary payloads return rows and a nil batch. The worker
// hot path uses this so columnar frames reach vector-capable operators
// without ever materializing row tuples.
func DecodeDeltasAny(buf []byte) ([]types.Delta, *types.DeltaBatch, error) {
	if len(buf) > 0 && buf[0] == deltaFormatCol {
		b, used, err := types.DecodeDeltaBatch(buf[1:])
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: decode delta batch: %w", err)
		}
		if used != len(buf)-1 {
			return nil, nil, fmt.Errorf("cluster: decode delta batch: %d trailing bytes", len(buf)-1-used)
		}
		return nil, b, nil
	}
	rows, err := DecodeDeltas(buf)
	return rows, nil, err
}

// dictRefBase splits the per-value token space: tokens below it are inline
// type-kind bytes (the types codec's own first byte), tokens at or above it
// reference dictionary entry token-dictRefBase. Kinds today occupy 0..4;
// the gap leaves room for new kinds without a format bump.
const dictRefBase = 8

// dictMinSize is the smallest encoded value worth dictionary-encoding: a
// reference costs 1-2 bytes, so 2-byte values (small ints, bools) never
// profit from the indirection.
const dictMinSize = 3

// EncodeDeltas serializes a delta batch to the wire format: a per-batch
// dictionary of repeated column values followed by the deltas, each value
// either inline (types codec) or a dictionary reference. Entries are
// ordered by descending occurrence so the hottest values get 1-byte
// references.
func EncodeDeltas(batch []types.Delta) []byte {
	counts := map[types.Value]int{}
	countTuple := func(t types.Tuple) {
		for _, v := range t {
			if v == nil {
				continue
			}
			if types.ValueSize(v) >= dictMinSize {
				counts[v]++
			}
		}
	}
	for _, d := range batch {
		countTuple(d.Tup)
		if d.Op == types.OpReplace {
			countTuple(d.Old)
		}
	}
	var dict []types.Value
	for v, n := range counts {
		if n >= 2 {
			dict = append(dict, v)
		}
	}
	// Deterministic order: hottest first (1-byte refs), ties broken by
	// kind then value so identical batches encode identically. The kind
	// tiebreak matters: ValueCompare treats int64(3) and float64(3.0) as
	// equal, which would leave their order to map iteration.
	sort.Slice(dict, func(i, j int) bool {
		if counts[dict[i]] != counts[dict[j]] {
			return counts[dict[i]] > counts[dict[j]]
		}
		ki, kj := types.KindOf(dict[i]), types.KindOf(dict[j])
		if ki != kj {
			return ki < kj
		}
		return types.ValueCompare(dict[i], dict[j]) < 0
	})
	index := make(map[types.Value]int, len(dict))
	for i, v := range dict {
		index[v] = i
	}

	buf := make([]byte, 0, 16+8*len(batch))
	buf = append(buf, deltaFormatDict)
	buf = binary.AppendUvarint(buf, uint64(len(dict)))
	for _, v := range dict {
		buf = types.AppendValue(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(batch)))
	appendTuple := func(t types.Tuple) {
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		for _, v := range t {
			if v != nil {
				if i, ok := index[v]; ok {
					buf = binary.AppendUvarint(buf, uint64(dictRefBase+i))
					continue
				}
			}
			buf = types.AppendValue(buf, v)
		}
	}
	for _, d := range batch {
		buf = append(buf, byte(d.Op))
		appendTuple(d.Tup)
		if d.Op == types.OpReplace {
			appendTuple(d.Old)
		}
	}
	return buf
}

// DecodeDeltas decodes a delta payload of either format to row form.
// Columnar payloads are fully materialized (fresh tuples, safe to
// retain); callers that can consume vectors use DecodeDeltasAny instead.
func DecodeDeltas(buf []byte) ([]types.Delta, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("cluster: decode deltas: empty buffer")
	}
	if buf[0] == deltaFormatCol {
		b, used, err := types.DecodeDeltaBatch(buf[1:])
		if err != nil {
			return nil, fmt.Errorf("cluster: decode delta batch: %w", err)
		}
		if used != len(buf)-1 {
			return nil, fmt.Errorf("cluster: decode delta batch: %d trailing bytes", len(buf)-1-used)
		}
		return b.Deltas(), nil
	}
	if buf[0] != deltaFormatDict {
		return nil, fmt.Errorf("cluster: decode deltas: unknown format 0x%02X", buf[0])
	}
	off := 1
	// Counts are bounded by the remaining bytes (every entry costs at
	// least one byte) before any allocation, so forged counts error out
	// instead of panicking in makeslice.
	nd, n := binary.Uvarint(buf[off:])
	if n <= 0 || nd > uint64(len(buf)-off-n) {
		return nil, fmt.Errorf("cluster: decode deltas: bad dictionary count")
	}
	off += n
	dict := make([]types.Value, nd)
	for i := range dict {
		v, used, err := types.DecodeValue(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("cluster: decode deltas: dictionary entry %d: %w", i, err)
		}
		dict[i] = v
		off += used
	}
	nb, n := binary.Uvarint(buf[off:])
	if n <= 0 || nb > uint64(len(buf)-off-n) {
		return nil, fmt.Errorf("cluster: decode deltas: bad batch count")
	}
	off += n
	readTuple := func() (types.Tuple, error) {
		arity, n := binary.Uvarint(buf[off:])
		if n <= 0 || arity > uint64(len(buf)-off-n) {
			return nil, fmt.Errorf("cluster: decode deltas: bad arity")
		}
		off += n
		t := make(types.Tuple, arity)
		for i := range t {
			tok, n := binary.Uvarint(buf[off:])
			if n <= 0 {
				return nil, fmt.Errorf("cluster: decode deltas: bad value token")
			}
			if tok >= dictRefBase {
				ref := int(tok - dictRefBase)
				if ref >= len(dict) {
					return nil, fmt.Errorf("cluster: decode deltas: dictionary ref %d out of range", ref)
				}
				t[i] = dict[ref]
				off += n
				continue
			}
			// Inline value: the token byte is the types codec's kind byte.
			v, used, err := types.DecodeValue(buf[off:])
			if err != nil {
				return nil, err
			}
			t[i] = v
			off += used
		}
		return t, nil
	}
	out := make([]types.Delta, 0, nb)
	for i := uint64(0); i < nb; i++ {
		if off >= len(buf) {
			return nil, fmt.Errorf("cluster: decode deltas: truncated at delta %d", i)
		}
		d := types.Delta{Op: types.Op(buf[off])}
		off++
		var err error
		if d.Tup, err = readTuple(); err != nil {
			return nil, fmt.Errorf("cluster: decode deltas: delta %d: %w", i, err)
		}
		if d.Op == types.OpReplace {
			if d.Old, err = readTuple(); err != nil {
				return nil, fmt.Errorf("cluster: decode deltas: delta %d old: %w", i, err)
			}
		}
		out = append(out, d)
	}
	if off != len(buf) {
		return nil, fmt.Errorf("cluster: decode deltas: %d trailing bytes", len(buf)-off)
	}
	return out, nil
}
