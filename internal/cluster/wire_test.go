package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/rex-data/rex/internal/types"
)

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(from, to int16, edge, stratum, count, epoch int32, kind uint8,
		terminate, closed, grant bool, credits uint16, prio int8, table string, payload []byte) bool {
		msg := Message{
			From: NodeID(from), To: NodeID(to), Edge: int(edge),
			Stratum: int(stratum), Kind: MsgKind(kind % 9), Payload: payload,
			Count: int(count), Terminate: terminate, Closed: closed,
			Epoch: int(epoch), Table: table,
			CreditGrant: grant,
			Priority:    int(prio),
		}
		if grant {
			msg.Credits = int(credits)
		}
		got, err := DecodeFrame(EncodeFrame(msg))
		if err != nil {
			return false
		}
		if got.From != msg.From || got.To != msg.To || got.Edge != msg.Edge ||
			got.Stratum != msg.Stratum || got.Kind != msg.Kind ||
			got.Count != msg.Count || got.Terminate != msg.Terminate ||
			got.Closed != msg.Closed || got.Epoch != msg.Epoch || got.Table != msg.Table ||
			got.CreditGrant != msg.CreditGrant || got.Credits != msg.Credits ||
			got.Priority != msg.Priority {
			return false
		}
		if len(got.Payload) != len(msg.Payload) {
			return false
		}
		for i := range got.Payload {
			if got.Payload[i] != msg.Payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// randValue draws one scalar from every kind the engine supports,
// including NULL. NaN is excluded: it is not equal to itself, so it cannot
// satisfy an equality-based round-trip property (the codec still carries
// it bit-exactly).
func randValue(r *rand.Rand) types.Value {
	switch r.Intn(6) {
	case 0:
		return nil
	case 1:
		return r.Int63() - (1 << 62) // negative and positive ints
	case 2:
		return int64(r.Intn(64)) // small ints: repeated, varint-short
	case 3:
		f := math.Float64frombits(r.Uint64())
		if math.IsNaN(f) {
			f = 0.5
		}
		return f
	case 4:
		const alphabet = "αβγ abcdefXYZ0123456789"
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		return string(b)
	default:
		return r.Intn(2) == 0
	}
}

func randDelta(r *rand.Rand) types.Delta {
	arity := 1 + r.Intn(5)
	tup := make(types.Tuple, arity)
	for i := range tup {
		tup[i] = randValue(r)
	}
	op := types.Op(r.Intn(4))
	d := types.Delta{Op: op, Tup: tup}
	if op == types.OpReplace {
		old := make(types.Tuple, arity)
		for i := range old {
			old[i] = randValue(r)
		}
		d.Old = old
	}
	return d
}

// Property: random delta batches — mixed-kind columns, NULLs, replace
// deltas, repeated values — round-trip the dictionary wire format exactly.
func TestDeltaBatchRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(20260729))
	for iter := 0; iter < 300; iter++ {
		batch := make([]types.Delta, r.Intn(40))
		for i := range batch {
			batch[i] = randDelta(r)
		}
		got, err := DecodeDeltas(EncodeDeltas(batch))
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if len(got) != len(batch) {
			t.Fatalf("iter %d: got %d deltas, want %d", iter, len(got), len(batch))
		}
		for i := range got {
			if got[i].Op != batch[i].Op || !got[i].Tup.Equal(batch[i].Tup) {
				t.Fatalf("iter %d delta %d: %v != %v", iter, i, got[i], batch[i])
			}
			if batch[i].Op == types.OpReplace && !got[i].Old.Equal(batch[i].Old) {
				t.Fatalf("iter %d delta %d: old %v != %v", iter, i, got[i].Old, batch[i].Old)
			}
		}
	}
}

// Kind fidelity: an int64 and an integral float64 compare ValueEq, but the
// wire must preserve the original kind (1 must not come back as 1.0).
func TestDeltaBatchPreservesKinds(t *testing.T) {
	batch := []types.Delta{
		types.Insert(types.NewTuple(int64(7), 7.0, "7", true, nil)),
		types.Insert(types.NewTuple(int64(7), 7.0, "7", true, nil)),
		types.Insert(types.NewTuple(int64(7), 7.0, "7", true, nil)),
	}
	got, err := DecodeDeltas(EncodeDeltas(batch))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range got {
		if _, ok := d.Tup[0].(int64); !ok {
			t.Fatalf("column 0 lost int kind: %T", d.Tup[0])
		}
		if _, ok := d.Tup[1].(float64); !ok {
			t.Fatalf("column 1 lost float kind: %T", d.Tup[1])
		}
		if _, ok := d.Tup[2].(string); !ok {
			t.Fatalf("column 2 lost string kind: %T", d.Tup[2])
		}
		if _, ok := d.Tup[3].(bool); !ok {
			t.Fatalf("column 3 lost bool kind: %T", d.Tup[3])
		}
		if d.Tup[4] != nil {
			t.Fatalf("column 4 lost NULL: %v", d.Tup[4])
		}
	}
}

// The dictionary must beat the plain per-value encoding on repetitive
// batches (the shape recursive delta streams actually have) and stay
// deterministic.
func TestDeltaBatchDictionaryCompresses(t *testing.T) {
	var batch []types.Delta
	for i := 0; i < 200; i++ {
		batch = append(batch, types.Insert(types.NewTuple(
			int64(i), "a-repeated-column-value", 1.0)))
	}
	wire := EncodeDeltas(batch)
	plain := types.EncodeBatch(batch)
	if len(wire) >= len(plain) {
		t.Fatalf("dictionary format %dB not smaller than plain %dB", len(wire), len(plain))
	}
	again := EncodeDeltas(batch)
	if string(wire) != string(again) {
		t.Fatal("encoding must be deterministic")
	}
}

// Truncated or corrupt buffers must error, never panic.
func TestDecodeDeltasCorrupt(t *testing.T) {
	batch := []types.Delta{
		types.Insert(types.NewTuple(int64(1), "hello", 2.5)),
		types.Replace(types.NewTuple(int64(1), "hello", 2.5), types.NewTuple(int64(1), "world", 3.5)),
	}
	wire := EncodeDeltas(batch)
	for cut := 0; cut < len(wire); cut++ {
		if _, err := DecodeDeltas(wire[:cut]); err == nil {
			t.Fatalf("truncation at %d must fail", cut)
		}
	}
	if _, err := DecodeDeltas(append(wire[:len(wire):len(wire)], 0xFF)); err == nil {
		t.Fatal("trailing garbage must fail")
	}
	if _, err := DecodeDeltas([]byte{0x42}); err == nil {
		t.Fatal("unknown format byte must fail")
	}
	if _, err := DecodeFrame([]byte{9, 9}); err == nil {
		t.Fatal("short frame must fail")
	}
	// Forged (huge) length fields must error, not panic in makeslice or
	// slicing: dictionary count, batch count, arity, string length, and
	// the frame's table/payload lengths.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	forged := [][]byte{
		append([]byte{deltaFormatDict}, huge...),                // dict count
		append([]byte{deltaFormatDict, 0}, huge...),             // batch count
		append([]byte{deltaFormatDict, 0, 1, 0}, huge...),       // arity
		append([]byte{deltaFormatDict, 1, 3}, huge...),          // dict string len
		append([]byte{deltaFormatDict, 0, 1, 0, 1, 3}, huge...), // value string len
	}
	for i, buf := range forged {
		if _, err := DecodeDeltas(buf); err == nil {
			t.Fatalf("forged buffer %d must fail", i)
		}
	}
	frame := EncodeFrame(Message{From: 0, To: 1, Kind: MsgData, Table: "t", Payload: []byte{1}})
	for cut := 3; cut < len(frame); cut++ {
		if _, err := DecodeFrame(frame[:cut]); err == nil {
			t.Fatalf("frame truncation at %d must fail", cut)
		}
	}
	// Frame with a forged table length in place of the real one.
	bad := append(frame[:len(frame)-5:len(frame)-5], huge...)
	if _, err := DecodeFrame(bad); err == nil {
		t.Fatal("forged frame length must fail")
	}
}

// Cross-kind numeric ties (int64(300) vs float64(300.0) compare equal)
// must still encode deterministically.
func TestDeltaBatchDeterministicUnderTies(t *testing.T) {
	var batch []types.Delta
	for i := 0; i < 4; i++ {
		batch = append(batch, types.Insert(types.NewTuple(int64(300), 300.0, int64(301), 301.0)))
	}
	first := EncodeDeltas(batch)
	for i := 0; i < 20; i++ {
		if string(EncodeDeltas(batch)) != string(first) {
			t.Fatal("encoding varies across runs for tied dictionary entries")
		}
	}
	got, err := DecodeDeltas(first)
	if err != nil || len(got) != len(batch) {
		t.Fatalf("round trip: %v %v", got, err)
	}
	if _, ok := got[0].Tup[0].(int64); !ok {
		t.Fatalf("kind lost on tied entries: %T", got[0].Tup[0])
	}
	if _, ok := got[0].Tup[1].(float64); !ok {
		t.Fatalf("kind lost on tied entries: %T", got[0].Tup[1])
	}
}
