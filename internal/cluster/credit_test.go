package cluster

import (
	"testing"
)

func TestCreditBookDefaultsGrantsAndSpend(t *testing.T) {
	var b creditBook
	if got := b.credits(0, 1); got != InitialCredits {
		t.Fatalf("fresh book credits = %d, want %d", got, InitialCredits)
	}
	b.spend(0, 1, 3)
	if got := b.credits(0, 1); got != InitialCredits-3 {
		t.Fatalf("after spend: %d, want %d", got, InitialCredits-3)
	}
	// Grants install absolute windows, not increments.
	b.grant(0, 1, 5)
	b.grant(0, 1, 5)
	if got := b.credits(0, 1); got != 5 {
		t.Fatalf("after grant: %d, want 5", got)
	}
	// Overdraw floors at zero.
	b.spend(0, 1, 100)
	if got := b.credits(0, 1); got != 0 {
		t.Fatalf("after overdraw: %d, want 0", got)
	}
	// Other pairs are independent.
	if got := b.credits(1, 0); got != InitialCredits {
		t.Fatalf("reverse pair: %d, want %d", got, InitialCredits)
	}
	b.reset()
	if got := b.credits(0, 1); got != InitialCredits {
		t.Fatalf("after reset: %d, want %d", got, InitialCredits)
	}
}

// Grants piggybacked on punctuation frames must survive the wire codec and
// install on the in-process transport as the frame passes its link: node
// 1's punct to node 0 grants node 0 a window for sending back to node 1.
func TestInProcCreditGrantViaPunctuation(t *testing.T) {
	tr := NewInProcTransport(2)
	tr.Send(Message{
		From: 1, To: 0, Kind: MsgPunct, Stratum: 3,
		CreditGrant: true, Credits: 4,
	})
	if _, ok := tr.Inbox(0).Get(); !ok {
		t.Fatal("punct frame not delivered")
	}
	if got := tr.Credits(0, 1); got != 4 {
		t.Fatalf("granted window = %d, want 4", got)
	}
	// An explicit zero grant closes the window (distinguishable from "no
	// grant", which leaves the default).
	tr.Send(Message{From: 1, To: 0, Kind: MsgPunct, Stratum: 4, CreditGrant: true})
	if got := tr.Credits(0, 1); got != 0 {
		t.Fatalf("zero grant window = %d, want 0", got)
	}
	// The ungranted direction still has its initial window.
	if got := tr.Credits(1, 0); got != InitialCredits {
		t.Fatalf("ungranted window = %d, want %d", got, InitialCredits)
	}
	// A round barrier resets every window to the initial default.
	tr.Send(Message{From: -1, To: 0, Kind: MsgRound})
	if got := tr.Credits(0, 1); got != InitialCredits {
		t.Fatalf("post-round window = %d, want %d", got, InitialCredits)
	}
}

// The TCP node side installs grants as frames come off its sockets. The
// deliver path is exercised directly: a configured node receiving a peer's
// punct-with-grant must open the window toward that peer, and MsgStart
// must reset it.
func TestTCPNodeCreditGrantOnDeliver(t *testing.T) {
	nd, err := ListenTCPNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if err := nd.Configure(0, []string{nd.Addr(), "127.0.0.1:1"}, 1); err != nil {
		t.Fatal(err)
	}
	nd.deliver(Message{
		From: 1, To: 0, Kind: MsgPunct, Job: 1,
		CreditGrant: true, Credits: 2,
	}, 16, nil)
	if got := nd.Credits(0, 1); got != 2 {
		t.Fatalf("granted window = %d, want 2", got)
	}
	nd.SpendCredits(0, 1, 1)
	if got := nd.Credits(0, 1); got != 1 {
		t.Fatalf("after spend: %d, want 1", got)
	}
	nd.deliver(Message{From: -1, To: 0, Kind: MsgStart, Job: 1}, 16, nil)
	if got := nd.Credits(0, 1); got != InitialCredits {
		t.Fatalf("post-start window = %d, want %d", got, InitialCredits)
	}
}

// Credit grants round-trip the frame codec, including the explicit zero
// window.
func TestFrameCreditRoundTrip(t *testing.T) {
	for _, w := range []int{0, 1, 63, 1 << 20} {
		msg := Message{From: 2, To: 1, Kind: MsgPunct, Stratum: 7, CreditGrant: true, Credits: w}
		got, err := DecodeFrame(EncodeFrame(msg))
		if err != nil {
			t.Fatalf("credits=%d: %v", w, err)
		}
		if !got.CreditGrant || got.Credits != w {
			t.Fatalf("credits=%d: decoded grant=%v credits=%d", w, got.CreditGrant, got.Credits)
		}
	}
	// Absence of the flag decodes as no grant.
	got, err := DecodeFrame(EncodeFrame(Message{From: 2, To: 1, Kind: MsgData}))
	if err != nil || got.CreditGrant || got.Credits != 0 {
		t.Fatalf("no-grant frame: %+v %v", got, err)
	}
}
