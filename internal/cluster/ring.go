// Package cluster is REX's shared-nothing cluster substrate (§4.1):
// worker nodes, a pluggable message transport with batching and per-node
// bandwidth accounting, a consistent-hashing ring with data replication,
// partition snapshots distributed with each query, and failure injection
// with detection by the query requestor.
//
// The Transport interface has two backends. InProcTransport runs every
// worker as an event loop on its own goroutine, with all cross-node data
// still passing through the binary codec so the bandwidth experiments
// measure real serialized bytes. TCPTransport runs each worker in its own
// OS process (see cmd/rexnode) and carries the same wire frames over real
// sockets with length-prefixed framing.
package cluster

import (
	"fmt"
	"sort"
)

// NodeID identifies a worker node (0..N-1).
type NodeID int

// ringEntry is one virtual node position on the hash circle.
type ringEntry struct {
	hash uint64
	node NodeID
}

// Ring is a consistent-hashing ring with virtual nodes and replication,
// the partitioning scheme of §4.1 ("partitions are chosen using a
// consistent hashing and data replication scheme known to all nodes").
type Ring struct {
	entries     []ringEntry
	nodes       []NodeID
	replication int
}

// NewRing builds a ring over n nodes with the given virtual nodes per
// physical node and replication factor. Replication is capped at n.
func NewRing(n, vnodesPerNode, replication int) *Ring {
	if n <= 0 {
		panic("cluster: ring needs at least one node")
	}
	if vnodesPerNode <= 0 {
		vnodesPerNode = 64
	}
	if replication <= 0 {
		replication = 1
	}
	if replication > n {
		replication = n
	}
	r := &Ring{replication: replication}
	for node := 0; node < n; node++ {
		r.nodes = append(r.nodes, NodeID(node))
		for v := 0; v < vnodesPerNode; v++ {
			h := splitmix64(uint64(node)<<32 | uint64(v)*2654435761)
			r.entries = append(r.entries, ringEntry{hash: h, node: NodeID(node)})
		}
	}
	sort.Slice(r.entries, func(i, j int) bool { return r.entries[i].hash < r.entries[j].hash })
	return r
}

// splitmix64 scrambles virtual-node positions uniformly around the circle.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Replication reports the configured replication factor.
func (r *Ring) Replication() int { return r.replication }

// Nodes reports all physical nodes on the ring.
func (r *Ring) Nodes() []NodeID { return r.nodes }

// Owners returns the replication-many distinct nodes responsible for hash h,
// in ring order (the first is the primary owner).
func (r *Ring) Owners(h uint64) []NodeID {
	idx := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].hash >= h })
	owners := make([]NodeID, 0, r.replication)
	seen := map[NodeID]bool{}
	for i := 0; len(owners) < r.replication && i < len(r.entries); i++ {
		e := r.entries[(idx+i)%len(r.entries)]
		if !seen[e.node] {
			seen[e.node] = true
			owners = append(owners, e.node)
		}
	}
	return owners
}

// Snapshot is the partition snapshot distributed with every query (§4.1):
// the ring plus the set of nodes the requestor believed alive. All data for
// the query is routed by this snapshot, so routing stays stable even as the
// cluster changes; recovery installs a new snapshot.
type Snapshot struct {
	ring  *Ring
	alive map[NodeID]bool
	// aliveList caches alive node ids in order.
	aliveList []NodeID
}

// NewSnapshot captures the ring with the given live nodes.
func NewSnapshot(r *Ring, alive []NodeID) *Snapshot {
	s := &Snapshot{ring: r, alive: map[NodeID]bool{}}
	for _, n := range alive {
		s.alive[n] = true
	}
	s.aliveList = append(s.aliveList, alive...)
	sort.Slice(s.aliveList, func(i, j int) bool { return s.aliveList[i] < s.aliveList[j] })
	return s
}

// Alive reports whether node n is alive in this snapshot.
func (s *Snapshot) Alive(n NodeID) bool { return s.alive[n] }

// AliveNodes lists the alive nodes in ascending order.
func (s *Snapshot) AliveNodes() []NodeID { return s.aliveList }

// Ring exposes the underlying ring.
func (s *Snapshot) Ring() *Ring { return s.ring }

// Primary returns the first alive owner of hash h — the node a rehash
// routes the key to under this snapshot.
func (s *Snapshot) Primary(h uint64) (NodeID, error) {
	for _, n := range s.ring.Owners(h) {
		if s.alive[n] {
			return n, nil
		}
	}
	// All configured replicas dead: fall back to any alive node in ring
	// order past the owners so the query can still complete.
	idx := sort.Search(len(s.ring.entries), func(i int) bool { return s.ring.entries[i].hash >= h })
	for i := 0; i < len(s.ring.entries); i++ {
		e := s.ring.entries[(idx+i)%len(s.ring.entries)]
		if s.alive[e.node] {
			return e.node, nil
		}
	}
	return 0, fmt.Errorf("cluster: no alive node for hash %d", h)
}

// Replicas returns the alive replica owners for hash h (primary first).
func (s *Snapshot) Replicas(h uint64) []NodeID {
	owners := s.ring.Owners(h)
	out := make([]NodeID, 0, len(owners))
	for _, n := range owners {
		if s.alive[n] {
			out = append(out, n)
		}
	}
	return out
}

// Without derives a new snapshot excluding the given node — the updated
// partition snapshot installed during recovery (§4.1: "During each recovery
// process, the data partition snapshot gets updated").
func (s *Snapshot) Without(dead NodeID) *Snapshot {
	remaining := make([]NodeID, 0, len(s.aliveList))
	for _, n := range s.aliveList {
		if n != dead {
			remaining = append(remaining, n)
		}
	}
	return NewSnapshot(s.ring, remaining)
}
