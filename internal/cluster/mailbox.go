package cluster

import "sync"

// Mailbox is an unbounded FIFO queue. Unboundedness matters: worker loops
// both send and receive, and bounded channels could deadlock on cyclic
// recursive flows (fixpoint feeds data back upstream).
type Mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	head   int // index of the next message to dequeue
	closed bool
}

// mailboxCompactAt bounds the drained prefix a mailbox retains: once the
// head index passes it (and at least half the slice is drained) the live
// tail is copied to the front so the backing array — and the payloads of
// every drained message — can be reclaimed.
const mailboxCompactAt = 64

// NewMailbox creates an empty mailbox.
func NewMailbox() *Mailbox {
	m := &Mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Put enqueues a message; no-op after Close.
func (m *Mailbox) Put(msg Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.queue = append(m.queue, msg)
	m.cond.Signal()
}

// Get blocks until a message is available or the mailbox is closed.
func (m *Mailbox) Get() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.head == len(m.queue) && !m.closed {
		m.cond.Wait()
	}
	if m.head == len(m.queue) {
		return Message{}, false
	}
	msg := m.queue[m.head]
	// Zero the slot so the drained message's payload is collectible even
	// while the backing array lives on.
	m.queue[m.head] = Message{}
	m.head++
	switch {
	case m.head == len(m.queue):
		// Drained: reuse the array from the start.
		m.queue = m.queue[:0]
		m.head = 0
	case m.head >= mailboxCompactAt && m.head*2 >= len(m.queue):
		n := copy(m.queue, m.queue[m.head:])
		for i := n; i < len(m.queue); i++ {
			m.queue[i] = Message{}
		}
		m.queue = m.queue[:n]
		m.head = 0
	}
	return msg, true
}

// Close wakes all waiters; subsequent Gets drain then report closed.
func (m *Mailbox) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// Drain discards every queued message. Callers use it at query teardown to
// clear debris of an abandoned run (stale votes, result frames) so the next
// query on the same mailbox starts from an empty queue. It is only sound
// when no producer for the old run remains — the engine drains after its
// worker loops have exited, and the TCP driver drains inside StartJob after
// bumping the job generation (late arrivals are then dropped on receipt).
func (m *Mailbox) Drain() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.queue {
		m.queue[i] = Message{}
	}
	m.queue = m.queue[:0]
	m.head = 0
}

// Len reports the queued message count.
func (m *Mailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue) - m.head
}
