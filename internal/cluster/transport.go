package cluster

import (
	"github.com/rex-data/rex/internal/types"
)

// MsgKind discriminates transport messages.
type MsgKind uint8

const (
	// MsgData carries an encoded delta batch for one plan edge.
	MsgData MsgKind = iota
	// MsgPunct is an end-of-stratum punctuation marker (§4.2).
	MsgPunct
	// MsgVote carries a fixpoint operator's new-tuple count to the
	// requestor at the end of a stratum.
	MsgVote
	// MsgDecision is the requestor's verdict: advance or terminate.
	MsgDecision
	// MsgCheckpoint replicates Δᵢ-set state to ring replicas (§4.3).
	MsgCheckpoint
	// MsgFailure notifies the requestor that a node died.
	MsgFailure
	// MsgShutdown stops a node loop.
	MsgShutdown
	// MsgStart begins (or, after a failure, resumes) query execution on a
	// worker for a given epoch.
	MsgStart
	// MsgError reports a fatal operator error to the requestor; the error
	// text travels in the Table field.
	MsgError
	// MsgJob ships a serialized job description to a worker daemon: the
	// recipe from which the remote process rebuilds the catalog, plan,
	// and its data partition before the query starts (multi-process
	// execution only; in-process transports never see it).
	MsgJob
	// MsgJobReady acknowledges a MsgJob: the worker built its plan and
	// loaded its partition, and is ready for MsgStart.
	MsgJobReady
	// MsgKill tells a remote worker daemon the driver declared it dead
	// (failure injection over a real network).
	MsgKill
	// MsgRevive re-arms a remote worker after a MsgKill.
	MsgRevive
	// MsgStatsReq asks a worker daemon for its cumulative transport
	// counters.
	MsgStatsReq
	// MsgStats answers a MsgStatsReq; the counters travel in Payload.
	MsgStats
	// MsgQuit terminates a worker daemon process.
	MsgQuit
	// MsgAbort tells workers the requestor abandoned the current query
	// (cancellation or deadline): drop the per-query operator state so the
	// remaining in-flight frames of the epoch drain without processing.
	// Stores and checkpoints are untouched — the next query on the same
	// session starts clean.
	MsgAbort
	// MsgCancel is a local-only sentinel: it never crosses the wire.
	// Timed waits on the requestor mailbox inject it so their collector
	// goroutine unblocks and exits instead of consuming frames forever.
	MsgCancel
	// MsgIngest ships a base-table delta batch to a worker of a standing
	// query: Table names the base table, Payload is the encoded batch
	// (every delta routed to each ring owner of its partition key). The
	// worker applies the deltas to its store and buffers them; the next
	// MsgRound injects the buffered deltas into the resident dataflow.
	MsgIngest
	// MsgRound begins one incremental ingestion round on a resident
	// (standing-query) dataflow: the worker reopens its per-round
	// punctuation state, feeds the buffered ingest deltas through the base
	// scans' edges, and re-runs the fixpoint from current operator state.
	MsgRound
	// MsgRoundReq is a local-only sentinel (it never crosses the wire): a
	// subscriber's Ingest call injects it into the requestor mailbox to
	// hand the pending round request to the standing query's pump loop,
	// which is the mailbox's only reader.
	MsgRoundReq
	// MsgHello opens (and acknowledges) a client session on a rexd query
	// server connection: Payload carries a small JSON negotiation record
	// (see internal/srvproto). It is the mandatory first frame in each
	// direction.
	MsgHello
	// MsgQuery is a client request on a rexd server connection: Edge
	// carries the client-chosen request id and Payload a JSON request
	// record (op, RQL text, encoded arguments, options).
	MsgQuery
	// MsgRows answers a MsgQuery with result data: Edge echoes the
	// request id, Payload carries an encoded delta batch, Count the
	// ingestion round, Terminate marks a standing query's round boundary,
	// and Closed marks the request's final frame — its Table field then
	// carries a JSON trailer with run statistics.
	MsgRows
	// MsgErr fails a MsgQuery: Edge echoes the request id, Table carries
	// the message, and Count a sentinel error code (see internal/srvproto).
	MsgErr
	// MsgCreditAck acknowledges applied MsgIngest staging frames back to
	// the requestor: From is the acking worker, and the piggybacked credit
	// grant re-arms the requestor's staging window toward that worker
	// (Credits sized from the worker's measured drain rate). It is the
	// MsgIngest counterpart of the punctuation grants workers exchange on
	// the shuffle path, closing the one flow-control gap the control plane
	// had.
	MsgCreditAck
	// MsgCommit is the standing-query round-commit barrier. Driver → worker
	// (From=-1): the round in Stratum closed its fixpoint on every node —
	// apply the round's buffered base-table deltas to local storage and,
	// on a durable backend, fsync a commit mark. Worker → requestor: the
	// ack, echoing the round. Store mutation happens only here, so a node
	// that dies mid-round leaves its store exactly at the last committed
	// round — the invariant crash recovery rebuilds from.
	MsgCommit
)

// Message is one transport frame. Data frames carry the encoded batch in
// Payload; the decoded form is never shipped across nodes.
type Message struct {
	From    NodeID
	To      NodeID
	Edge    int // plan edge id for data/punct routing
	Stratum int
	Kind    MsgKind
	Payload []byte
	// Count is the tuple count for data frames or the vote count.
	Count int
	// Terminate is set on MsgDecision frames when the query is done.
	Terminate bool
	// Closed marks a punctuation as final: the sender will never produce
	// on this edge again (base-case data closes after stratum 0).
	Closed bool
	// Epoch identifies the execution attempt; after a failure the
	// requestor re-runs the query under a new epoch and workers drop
	// frames from stale epochs.
	Epoch int
	// Job identifies the job generation on multi-process transports:
	// every query run bumps it, and receivers drop frames from stale
	// generations (a socket can still carry a prior run's stragglers
	// when the next one starts). Always zero in-process.
	Job int
	// Table names the checkpoint target for MsgCheckpoint frames.
	Table string
	// CreditGrant marks the frame as carrying a flow-control window grant:
	// the punctuating worker (From) grants the addressed peer (To) a fresh
	// window of Credits data-frame sends back to it. Transports intercept
	// the grant on delivery and install it in their credit book; see
	// Transport.Credits.
	CreditGrant bool
	Credits     int
	// Priority is scheduling metadata on client-facing frames (MsgHello /
	// MsgQuery between a rex client and a rexd server): -1 low, 0 normal,
	// +1 high. Encoded only when nonzero (flag bit + varint, like credit
	// grants) so inter-worker data frames pay nothing for it. Workers
	// ignore it; the server's admission scheduler reads it off the frame
	// before the request payload is even parsed.
	Priority int
}

// Transport connects worker nodes and the query requestor. The executor is
// written against this interface only, so the same engine, operators, and
// recovery protocol run over the in-process mailbox fabric
// (InProcTransport) or real sockets (TCPTransport).
//
// Node -1 is the requestor everywhere: control frames from the requestor
// carry From=-1, and requestor-bound traffic travels via SendToRequestor.
type Transport interface {
	// N reports the worker count.
	N() int
	// LocalNodes lists the workers whose event loops run in this
	// process: all of them in-process, exactly one inside a worker
	// daemon, none on a TCP driver (its workers live in other
	// processes).
	LocalNodes() []NodeID
	// Metrics exposes the per-node transport counters. On multi-process
	// transports the driver's view of remote counters is refreshed by
	// SyncMetrics (see MetricsSyncer).
	Metrics() *Metrics
	// Inbox returns the mailbox of worker n. Only valid for local nodes.
	Inbox(n NodeID) *Mailbox
	// Requestor returns the requestor's mailbox (driver side only).
	Requestor() *Mailbox
	// Alive reports whether node n is currently alive.
	Alive(n NodeID) bool
	// AliveNodes lists currently alive nodes.
	AliveNodes() []NodeID
	// Kill marks node n dead, drops its traffic, and notifies the
	// requestor — the failure-injection path of §4.1/§4.3.
	Kill(n NodeID)
	// Revive restores a node so successive runs can reuse one cluster.
	Revive(n NodeID)
	// Send routes msg to its destination worker. Inter-node frames are
	// wire-encoded and their measured size accounted; loopback
	// self-sends skip the wire and the counters.
	Send(msg Message)
	// SendData encodes and ships a delta batch along a plan edge,
	// returning the encoded payload size.
	SendData(from, to NodeID, edge, stratum, epoch int, batch []types.Delta) int
	// SendToRequestor delivers a control frame to the requestor.
	SendToRequestor(msg Message)
	// Broadcast sends msg to every alive worker (used for decisions).
	Broadcast(msg Message)
	// InboxLen reports the queue depth of worker n's mailbox where the
	// transport can observe it (0 for dead, remote, or out-of-range
	// nodes). It is a local observability hook only — a worker reads its
	// OWN depth to compute the credit windows it grants; senders gate on
	// Credits, never on a peer's InboxLen (which is unobservable over a
	// real network).
	InboxLen(n NodeID) int
	// Credits reports the flow-control window worker `from` currently
	// holds for shipping data frames to worker `to`: the number of sends
	// the receiver has granted (InitialCredits before any grant arrives).
	// Receivers piggyback grants on punctuation frames (Message.
	// CreditGrant) and every MsgStart/MsgRound resets all windows, so the
	// signal works identically in-process and across sockets.
	Credits(from, to NodeID) int
	// SpendCredits consumes n send credits from `from`'s window to `to`,
	// flooring at zero. Compacting senders spend one per shipped batch;
	// an exhausted window defers flushing (coalescing more) until the
	// next grant or the sender's hard overflow cap.
	SpendCredits(from, to NodeID, n int)
	// Close releases transport resources (sockets, listeners, mailboxes).
	Close() error
}

// MetricsSyncer is implemented by transports whose per-node counters live
// in other processes: SyncMetrics pulls the remote counters into the local
// Metrics so totals reflect measured wire traffic. The engine calls it
// after a successful run, before reading byte counts.
type MetricsSyncer interface {
	SyncMetrics() error
}
