package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/rex-data/rex/internal/types"
)

// MsgKind discriminates transport messages.
type MsgKind uint8

const (
	// MsgData carries an encoded delta batch for one plan edge.
	MsgData MsgKind = iota
	// MsgPunct is an end-of-stratum punctuation marker (§4.2).
	MsgPunct
	// MsgVote carries a fixpoint operator's new-tuple count to the
	// requestor at the end of a stratum.
	MsgVote
	// MsgDecision is the requestor's verdict: advance or terminate.
	MsgDecision
	// MsgCheckpoint replicates Δᵢ-set state to ring replicas (§4.3).
	MsgCheckpoint
	// MsgFailure notifies the requestor that a node died.
	MsgFailure
	// MsgShutdown stops a node loop.
	MsgShutdown
	// MsgStart begins (or, after a failure, resumes) query execution on a
	// worker for a given epoch.
	MsgStart
	// MsgError reports a fatal operator error to the requestor; the error
	// text travels in the Table field.
	MsgError
)

// Message is one transport frame. Data frames carry the encoded batch in
// Payload; the decoded form is never shipped across nodes.
type Message struct {
	From    NodeID
	To      NodeID
	Edge    int // plan edge id for data/punct routing
	Stratum int
	Kind    MsgKind
	Payload []byte
	// Count is the tuple count for data frames or the vote count.
	Count int
	// Terminate is set on MsgDecision frames when the query is done.
	Terminate bool
	// Closed marks a punctuation as final: the sender will never produce
	// on this edge again (base-case data closes after stratum 0).
	Closed bool
	// Epoch identifies the execution attempt; after a failure the
	// requestor re-runs the query under a new epoch and workers drop
	// frames from stale epochs.
	Epoch int
	// Table names the checkpoint target for MsgCheckpoint frames.
	Table string
}

// Mailbox is an unbounded FIFO queue. Unboundedness matters: worker loops
// both send and receive, and bounded channels could deadlock on cyclic
// recursive flows (fixpoint feeds data back upstream).
type Mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

// NewMailbox creates an empty mailbox.
func NewMailbox() *Mailbox {
	m := &Mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Put enqueues a message; no-op after Close.
func (m *Mailbox) Put(msg Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.queue = append(m.queue, msg)
	m.cond.Signal()
}

// Get blocks until a message is available or the mailbox is closed.
func (m *Mailbox) Get() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return Message{}, false
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

// Close wakes all waiters; subsequent Gets drain then report closed.
func (m *Mailbox) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// Len reports the queued message count.
func (m *Mailbox) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// Metrics aggregates transport statistics. The bandwidth figures of §6.5
// read BytesSent: "we measured the total amount of data sent by each node".
// BytesSent counts encoded frame bytes — the measured wire volume, not an
// estimate. CompactIn/CompactOut count deltas entering and leaving the
// shuffle compactors, so callers can report the compaction ratio.
type Metrics struct {
	BytesSent     []atomic.Int64
	BytesReceived []atomic.Int64
	MessagesSent  []atomic.Int64
	TuplesSent    []atomic.Int64
	CompactIn     []atomic.Int64
	CompactOut    []atomic.Int64
}

// NewMetrics sizes counters for n nodes.
func NewMetrics(n int) *Metrics {
	return &Metrics{
		BytesSent:     make([]atomic.Int64, n),
		BytesReceived: make([]atomic.Int64, n),
		MessagesSent:  make([]atomic.Int64, n),
		TuplesSent:    make([]atomic.Int64, n),
		CompactIn:     make([]atomic.Int64, n),
		CompactOut:    make([]atomic.Int64, n),
	}
}

// TotalBytesSent sums sent bytes over all nodes.
func (m *Metrics) TotalBytesSent() int64 {
	var t int64
	for i := range m.BytesSent {
		t += m.BytesSent[i].Load()
	}
	return t
}

// TotalCompaction sums the shuffle compactor in/out delta counts.
func (m *Metrics) TotalCompaction() (in, out int64) {
	for i := range m.CompactIn {
		in += m.CompactIn[i].Load()
		out += m.CompactOut[i].Load()
	}
	return in, out
}

// Reset zeroes all counters.
func (m *Metrics) Reset() {
	for i := range m.BytesSent {
		m.BytesSent[i].Store(0)
		m.BytesReceived[i].Store(0)
		m.MessagesSent[i].Store(0)
		m.TuplesSent[i].Store(0)
		m.CompactIn[i].Store(0)
		m.CompactOut[i].Store(0)
	}
}

// Transport connects the worker nodes and the requestor. It models the
// paper's batched TCP links: data is encoded once at send time, byte counts
// accumulate per node, and frames to dead nodes vanish (the network drops
// them; the requestor learns of the death separately).
type Transport struct {
	n         int
	inboxes   []*Mailbox
	requestor *Mailbox
	metrics   *Metrics

	mu    sync.Mutex
	alive []bool
}

// NewTransport creates a transport for n worker nodes plus one requestor.
func NewTransport(n int) *Transport {
	t := &Transport{
		n:         n,
		inboxes:   make([]*Mailbox, n),
		requestor: NewMailbox(),
		metrics:   NewMetrics(n),
		alive:     make([]bool, n),
	}
	for i := range t.inboxes {
		t.inboxes[i] = NewMailbox()
		t.alive[i] = true
	}
	return t
}

// N reports the worker count.
func (t *Transport) N() int { return t.n }

// Metrics exposes the transport counters.
func (t *Transport) Metrics() *Metrics { return t.metrics }

// Inbox returns the mailbox of worker n.
func (t *Transport) Inbox(n NodeID) *Mailbox { return t.inboxes[n] }

// Requestor returns the requestor's mailbox.
func (t *Transport) Requestor() *Mailbox { return t.requestor }

// Alive reports whether node n is currently alive.
func (t *Transport) Alive(n NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.alive[n]
}

// AliveNodes lists currently alive nodes.
func (t *Transport) AliveNodes() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NodeID, 0, t.n)
	for i, a := range t.alive {
		if a {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Kill marks node n dead, drops its queued traffic, and notifies the
// requestor — the failure-detection path of §4.1/§4.3.
func (t *Transport) Kill(n NodeID) {
	t.mu.Lock()
	wasAlive := t.alive[n]
	t.alive[n] = false
	t.mu.Unlock()
	if !wasAlive {
		return
	}
	t.inboxes[n].Close()
	t.requestor.Put(Message{From: n, Kind: MsgFailure})
}

// Revive restores a node (fresh mailbox) so successive experiment runs can
// reuse one cluster.
func (t *Transport) Revive(n NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.alive[n] {
		return
	}
	t.alive[n] = true
	t.inboxes[n] = NewMailbox()
}

// Send routes msg to its destination worker over the simulated link:
// inter-node frames are wire-encoded, their frame size accounted, then
// decoded on the receiving side — what arrives is what survived
// serialization, and BytesSent is the measured wire volume. Frames to dead
// nodes are dropped. Self-sends are delivered (loopback, never encoded)
// and not counted as network traffic; requestor traffic (From=-1) is
// control-plane and also skips the wire.
func (t *Transport) Send(msg Message) {
	if msg.To < 0 || int(msg.To) >= t.n {
		return
	}
	t.mu.Lock()
	aliveTo := t.alive[msg.To]
	aliveFrom := msg.From < 0 || t.alive[msg.From] // requestor is From=-1
	inbox := t.inboxes[msg.To]
	t.mu.Unlock()
	if !aliveFrom {
		return // a dead node sends nothing
	}
	if msg.From != msg.To && msg.From >= 0 {
		frame := EncodeFrame(msg)
		sz := int64(len(frame))
		t.metrics.BytesSent[msg.From].Add(sz)
		t.metrics.MessagesSent[msg.From].Add(1)
		t.metrics.TuplesSent[msg.From].Add(int64(msg.Count))
		if !aliveTo {
			return // dropped on the floor: the sender still paid the bytes
		}
		t.metrics.BytesReceived[msg.To].Add(sz)
		decoded, err := DecodeFrame(frame)
		if err != nil {
			// A frame that fails to round-trip is a codec bug, not a
			// runtime condition; fail loudly rather than deliver garbage.
			panic(fmt.Sprintf("cluster: wire frame round-trip: %v", err))
		}
		msg = decoded
	}
	if !aliveTo {
		return
	}
	inbox.Put(msg)
}

// SendData encodes and ships a delta batch along a plan edge using the
// dictionary wire format; it is the shuffle path's send primitive. It
// returns the encoded payload size — note Metrics.BytesSent records the
// full frame (payload plus header), so do not add the return value to
// those counters.
func (t *Transport) SendData(from, to NodeID, edge, stratum, epoch int, batch []types.Delta) int {
	payload := EncodeDeltas(batch)
	t.Send(Message{
		From: from, To: to, Edge: edge, Stratum: stratum,
		Kind: MsgData, Payload: payload, Count: len(batch), Epoch: epoch,
	})
	return len(payload)
}

// InboxLen reports the queue depth of worker n's mailbox (0 for dead or
// out-of-range nodes). Compacting senders use it as the backpressure
// high-water signal: rather than flooding a backlogged peer they hold
// deltas back for further coalescing.
func (t *Transport) InboxLen(n NodeID) int {
	if n < 0 || int(n) >= t.n {
		return 0
	}
	t.mu.Lock()
	alive := t.alive[n]
	inbox := t.inboxes[n]
	t.mu.Unlock()
	if !alive {
		return 0
	}
	return inbox.Len()
}

// SendToRequestor delivers a control frame to the requestor.
func (t *Transport) SendToRequestor(msg Message) {
	t.mu.Lock()
	aliveFrom := msg.From < 0 || t.alive[msg.From]
	t.mu.Unlock()
	if !aliveFrom {
		return
	}
	t.requestor.Put(msg)
}

// Broadcast sends msg to every alive worker (used for decisions).
func (t *Transport) Broadcast(msg Message) {
	for _, n := range t.AliveNodes() {
		m := msg
		m.To = n
		t.Send(m)
	}
}

// CloseAll closes every mailbox; used at query teardown.
func (t *Transport) CloseAll() {
	for _, in := range t.inboxes {
		in.Close()
	}
	t.requestor.Close()
}
