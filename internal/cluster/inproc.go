package cluster

import (
	"fmt"
	"sync"

	"github.com/rex-data/rex/internal/types"
)

// InProcTransport is the in-process Transport backend: every worker is an
// event loop on a goroutine and links are mailboxes. It models the paper's
// batched TCP links: data is encoded once at send time, byte counts
// accumulate per node, and frames to dead nodes vanish (the network drops
// them; the requestor learns of the death separately). All cross-node data
// still passes through the binary codec, so the bandwidth experiments
// measure real serialized bytes.
type InProcTransport struct {
	n         int
	inboxes   []*Mailbox
	requestor *Mailbox
	metrics   *Metrics
	credits   creditBook

	mu    sync.Mutex
	alive []bool
}

var _ Transport = (*InProcTransport)(nil)

// NewInProcTransport creates an in-process transport for n worker nodes
// plus one requestor.
func NewInProcTransport(n int) *InProcTransport {
	t := &InProcTransport{
		n:         n,
		inboxes:   make([]*Mailbox, n),
		requestor: NewMailbox(),
		metrics:   NewMetrics(n),
		alive:     make([]bool, n),
	}
	for i := range t.inboxes {
		t.inboxes[i] = NewMailbox()
		t.alive[i] = true
	}
	return t
}

// N reports the worker count.
func (t *InProcTransport) N() int { return t.n }

// LocalNodes lists every worker: in-process, all event loops share this
// process.
func (t *InProcTransport) LocalNodes() []NodeID {
	out := make([]NodeID, t.n)
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// Metrics exposes the transport counters.
func (t *InProcTransport) Metrics() *Metrics { return t.metrics }

// Inbox returns the mailbox of worker n.
func (t *InProcTransport) Inbox(n NodeID) *Mailbox { return t.inboxes[n] }

// Requestor returns the requestor's mailbox.
func (t *InProcTransport) Requestor() *Mailbox { return t.requestor }

// Alive reports whether node n is currently alive.
func (t *InProcTransport) Alive(n NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.alive[n]
}

// AliveNodes lists currently alive nodes.
func (t *InProcTransport) AliveNodes() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NodeID, 0, t.n)
	for i, a := range t.alive {
		if a {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Kill marks node n dead, drops its queued traffic, and notifies the
// requestor — the failure-detection path of §4.1/§4.3.
func (t *InProcTransport) Kill(n NodeID) {
	t.mu.Lock()
	wasAlive := t.alive[n]
	t.alive[n] = false
	t.mu.Unlock()
	if !wasAlive {
		return
	}
	t.inboxes[n].Close()
	t.requestor.Put(Message{From: n, Kind: MsgFailure})
}

// Revive restores a node (fresh mailbox) so successive experiment runs can
// reuse one cluster.
func (t *InProcTransport) Revive(n NodeID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.alive[n] {
		return
	}
	t.alive[n] = true
	t.inboxes[n] = NewMailbox()
}

// Send routes msg to its destination worker over the simulated link:
// inter-node frames are wire-encoded, their frame size accounted, then
// decoded on the receiving side — what arrives is what survived
// serialization, and BytesSent is the measured wire volume. Frames to dead
// nodes are dropped. Self-sends are delivered (loopback, never encoded)
// and not counted as network traffic; requestor traffic (From=-1) is
// control-plane and also skips the wire.
func (t *InProcTransport) Send(msg Message) {
	if msg.To < 0 || int(msg.To) >= t.n {
		return
	}
	t.mu.Lock()
	aliveTo := t.alive[msg.To]
	aliveFrom := msg.From < 0 || t.alive[msg.From] // requestor is From=-1
	inbox := t.inboxes[msg.To]
	t.mu.Unlock()
	if !aliveFrom {
		return // a dead node sends nothing
	}
	if msg.From != msg.To && msg.From >= 0 {
		frame := EncodeFrame(msg)
		sz := int64(len(frame))
		t.metrics.BytesSent[msg.From].Add(sz)
		t.metrics.MessagesSent[msg.From].Add(1)
		t.metrics.TuplesSent[msg.From].Add(int64(msg.Count))
		if !aliveTo {
			return // dropped on the floor: the sender still paid the bytes
		}
		t.metrics.BytesReceived[msg.To].Add(sz)
		decoded, err := DecodeFrame(frame)
		if err != nil {
			// A frame that fails to round-trip is a codec bug, not a
			// runtime condition; fail loudly rather than deliver garbage.
			panic(fmt.Sprintf("cluster: wire frame round-trip: %v", err))
		}
		msg = decoded
	}
	if !aliveTo {
		return
	}
	// Flow-control side effects apply at delivery, exactly where a TCP
	// node would observe them coming off its socket: punctuation grants
	// install send windows, start/round barriers reset them.
	t.credits.observe(msg)
	inbox.Put(msg)
}

// SendData encodes and ships a delta batch along a plan edge using the
// dictionary wire format; it is the shuffle path's send primitive. It
// returns the encoded payload size — note Metrics.BytesSent records the
// full frame (payload plus header), so do not add the return value to
// those counters.
func (t *InProcTransport) SendData(from, to NodeID, edge, stratum, epoch int, batch []types.Delta) int {
	payload := EncodeDeltas(batch)
	t.Send(Message{
		From: from, To: to, Edge: edge, Stratum: stratum,
		Kind: MsgData, Payload: payload, Count: len(batch), Epoch: epoch,
	})
	return len(payload)
}

// InboxLen reports the queue depth of worker n's mailbox (0 for dead or
// out-of-range nodes). Compacting senders use it as the backpressure
// high-water signal: rather than flooding a backlogged peer they hold
// deltas back for further coalescing.
func (t *InProcTransport) InboxLen(n NodeID) int {
	if n < 0 || int(n) >= t.n {
		return 0
	}
	t.mu.Lock()
	alive := t.alive[n]
	inbox := t.inboxes[n]
	t.mu.Unlock()
	if !alive {
		return 0
	}
	return inbox.Len()
}

// Credits reports the send window from worker `from` to worker `to`; see
// Transport.Credits. Grants are installed as punctuation frames pass the
// simulated links, so the in-process fabric exercises the same machinery
// the socket backend relies on.
func (t *InProcTransport) Credits(from, to NodeID) int {
	return t.credits.credits(from, to)
}

// SpendCredits consumes send credits from `from`'s window to `to`.
func (t *InProcTransport) SpendCredits(from, to NodeID, n int) {
	t.credits.spend(from, to, n)
}

// SendToRequestor delivers a control frame to the requestor. Requestor
// deliveries observe the credit book the same way worker deliveries do,
// so a worker's MsgCreditAck grant re-arms the standing-query pump's
// staging window toward it.
func (t *InProcTransport) SendToRequestor(msg Message) {
	t.mu.Lock()
	aliveFrom := msg.From < 0 || t.alive[msg.From]
	t.mu.Unlock()
	if !aliveFrom {
		return
	}
	t.credits.observe(msg)
	t.requestor.Put(msg)
}

// Broadcast sends msg to every alive worker (used for decisions).
func (t *InProcTransport) Broadcast(msg Message) {
	for _, n := range t.AliveNodes() {
		m := msg
		m.To = n
		t.Send(m)
	}
}

// CloseAll closes every mailbox; used at query teardown.
func (t *InProcTransport) CloseAll() {
	for _, in := range t.inboxes {
		in.Close()
	}
	t.requestor.Close()
}

// Close implements Transport.
func (t *InProcTransport) Close() error {
	t.CloseAll()
	return nil
}
