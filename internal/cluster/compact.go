package cluster

import "github.com/rex-data/rex/internal/types"

// Compactor coalesces a buffered delta stream bound for one destination
// before it is encoded and shipped — the DBToaster insight applied to the
// shuffle path: the win is compacting the delta stream, not the link.
//
// Rules (per routing key, in arrival order):
//
//   - annihilation:   +(t) then −(t)            → nothing
//   - upsert folding: +(t) then →(t⇒t')         → +(t')
//   - chain folding:  →(a⇒b) then →(b⇒c)        → →(a⇒c)
//   - retraction:     →(a⇒b) then −(b)          → −(a)
//   - δ merging:      δ(E₁) then δ(E₂)          → δ(E₁⊕E₂) via MergeFunc
//
// Folding moves a delta's effect to the position of its key's previous
// delta, so the relative order of deltas with *different* keys can change.
// That is sound for REX's keyed consumers (fixpoint, group-by, join
// buckets keyed by the same columns the rehash partitions on), which is
// why compaction is an exec.Options opt-in rather than always-on.
type Compactor struct {
	key   KeyFunc
	merge MergeFunc

	order []types.Delta
	dead  []bool
	last  map[types.Value]int
	live  int

	added, annihilated, folded int
}

// KeyFunc extracts the routing key of a delta's tuple.
type KeyFunc func(types.Tuple) types.Value

// MergeFunc merges two same-key δ() deltas into one (the aggregate-delta
// merge ⊕ of §3.2 delta semantics, e.g. summing partial PageRank
// contributions). It reports false when the pair cannot be merged.
type MergeFunc func(a, b types.Delta) (types.Delta, bool)

// NewCompactor creates an empty compactor; merge may be nil, disabling
// δ-merging while keeping the annihilation and folding rules.
func NewCompactor(key KeyFunc, merge MergeFunc) *Compactor {
	return &Compactor{key: key, merge: merge, last: map[types.Value]int{}}
}

// Len reports the live (post-compaction) delta count.
func (c *Compactor) Len() int { return c.live }

// Buffered reports the buffer's physical size: live deltas plus
// annihilated slots not yet reclaimed by Drain. Flush triggers key off
// this, not Len, so heavy annihilation cannot grow the buffer unboundedly
// while the live count stays near zero.
func (c *Compactor) Buffered() int { return len(c.order) }

// Stats reports cumulative counters: deltas added, deltas removed by
// +/− annihilation, and deltas absorbed by folding or δ-merging.
func (c *Compactor) Stats() (added, annihilated, folded int) {
	return c.added, c.annihilated, c.folded
}

// Add buffers d, applying the compaction rules against the key's previous
// live delta.
func (c *Compactor) Add(d types.Delta) {
	c.added++
	k := c.key(d.Tup)
	if i, ok := c.last[k]; ok && i >= 0 && !c.dead[i] {
		p := c.order[i]
		switch {
		case p.Op == types.OpUpdate && d.Op == types.OpUpdate && c.merge != nil:
			if m, ok := c.merge(p, d); ok {
				c.order[i] = m
				c.folded++
				return
			}
		case p.Op == types.OpInsert && d.Op == types.OpDelete && p.Tup.Equal(d.Tup):
			c.dead[i] = true
			c.live--
			c.last[k] = -1 // an older delta for k may remain; stop tracking
			c.annihilated += 2
			return
		case p.Op == types.OpInsert && d.Op == types.OpReplace && p.Tup.Equal(d.Old):
			c.order[i] = types.Insert(d.Tup)
			c.folded++
			return
		case p.Op == types.OpReplace && d.Op == types.OpReplace && p.Tup.Equal(d.Old):
			c.order[i] = types.Replace(p.Old, d.Tup)
			c.folded++
			return
		case p.Op == types.OpReplace && d.Op == types.OpDelete && p.Tup.Equal(d.Tup):
			c.order[i] = types.Delete(p.Old)
			c.folded++
			return
		}
	}
	c.last[k] = len(c.order)
	c.order = append(c.order, d)
	c.dead = append(c.dead, false)
	c.live++
}

// Drain returns the compacted batch and resets the buffer. Cumulative
// stats survive draining.
func (c *Compactor) Drain() []types.Delta {
	var out []types.Delta
	if c.live > 0 {
		out = make([]types.Delta, 0, c.live)
		for i, d := range c.order {
			if !c.dead[i] {
				out = append(out, d)
			}
		}
	}
	c.order = nil
	c.dead = nil
	c.last = map[types.Value]int{}
	c.live = 0
	return out
}
