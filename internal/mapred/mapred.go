// Package mapred is a from-scratch Hadoop-style MapReduce engine used as
// the comparison baseline of §6, plus a HaLoop-style loop-aware extension.
// It reproduces the cost structure the paper measures against:
//
//   - map tasks over input splits (parallel across simulated workers),
//   - optional combiners,
//   - a sort-merge shuffle (keys really are sorted, like Hadoop's
//     external merge sort, in contrast to REX's hash-based grouping),
//   - reduce tasks, and materialization of job output ("HDFS"),
//   - a configurable per-job startup overhead (the JVM/task-scheduling
//     cost the paper identifies as Hadoop's key weakness for iteration).
//
// Following the paper's lower-bound methodology (§6 Platforms), the
// convergence test between iterations and input/output formatting cost
// nothing, and HaLoop's caches are built for free.
package mapred

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/rex-data/rex/internal/types"
)

// KV is one key-value pair.
type KV struct {
	K types.Value
	V types.Value
}

// Mapper transforms one input pair into output pairs.
type Mapper interface {
	Map(k, v types.Value, emit func(k, v types.Value)) error
}

// Reducer folds all values of one key into output pairs.
type Reducer interface {
	Reduce(k types.Value, vs []types.Value, emit func(k, v types.Value)) error
}

// MapperFunc adapts a function to Mapper.
type MapperFunc func(k, v types.Value, emit func(k, v types.Value)) error

// Map invokes the function.
func (f MapperFunc) Map(k, v types.Value, emit func(k, v types.Value)) error { return f(k, v, emit) }

// ReducerFunc adapts a function to Reducer.
type ReducerFunc func(k types.Value, vs []types.Value, emit func(k, v types.Value)) error

// Reduce invokes the function.
func (f ReducerFunc) Reduce(k types.Value, vs []types.Value, emit func(k, v types.Value)) error {
	return f(k, vs, emit)
}

// Job is one MapReduce job.
type Job struct {
	Name     string
	Mapper   Mapper
	Combiner Reducer // optional pre-aggregation before the shuffle
	Reducer  Reducer
}

// Config shapes the simulated Hadoop deployment.
type Config struct {
	// Workers is the number of parallel map/reduce slots (the paper runs
	// 4 concurrent tasks per machine on 28 machines).
	Workers int
	// StartupOverhead is charged once per job — Hadoop's task scheduling
	// and JVM startup cost. The paper's Hadoop-LB numbers exclude many
	// costs but still include job startup, which dominates iterative
	// workloads (§6.7).
	StartupOverhead time.Duration
	// SortBytes enables accounting of shuffle traffic.
	Metrics *Metrics
}

// Metrics accumulates engine statistics.
type Metrics struct {
	mu            sync.Mutex
	Jobs          int
	ShuffledPairs int64
	ShuffledBytes int64
	SpilledBytes  int64
}

// Add accumulates shuffle counters.
func (m *Metrics) add(pairs, bytes int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ShuffledPairs += pairs
	m.ShuffledBytes += bytes
}

func (m *Metrics) jobDone() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Jobs++
}

// Snapshot returns a copy of the counters.
func (m *Metrics) Snapshot() (jobs int, pairs, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.Jobs, m.ShuffledPairs, m.ShuffledBytes
}

// Engine runs MapReduce jobs over in-memory "HDFS" datasets.
type Engine struct {
	cfg Config
}

// NewEngine creates an engine.
func NewEngine(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	return &Engine{cfg: cfg}
}

// kvSize estimates the serialized size of a pair (same codec as REX so
// shuffle-byte comparisons are apples-to-apples).
func kvSize(kv KV) int64 {
	return int64(len(types.AppendValue(types.AppendValue(nil, kv.K), kv.V)))
}

// Run executes one job over the input, returning the materialized output.
func (e *Engine) Run(job *Job, input []KV) ([]KV, error) {
	time.Sleep(e.cfg.StartupOverhead)
	defer e.cfg.Metrics.jobDone()

	// Map phase: split input across workers.
	w := e.cfg.Workers
	splits := make([][]KV, w)
	for i, kv := range input {
		splits[i%w] = append(splits[i%w], kv)
	}
	mapped := make([][]KV, w)
	errs := make([]error, w)
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out []KV
			emit := func(k, v types.Value) { out = append(out, KV{k, v}) }
			for _, kv := range splits[i] {
				if err := job.Mapper.Map(kv.K, kv.V, emit); err != nil {
					errs[i] = err
					return
				}
			}
			if job.Combiner != nil {
				combined, err := combine(job.Combiner, out)
				if err != nil {
					errs[i] = err
					return
				}
				out = combined
			}
			mapped[i] = out
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Shuffle: partition by key hash, then sort-merge within each
	// partition (Hadoop's sort happens even when grouping alone would
	// suffice — one of the overheads REX's hash GROUP BY avoids, §6.3).
	parts := make([][]KV, w)
	var pairs, bytes int64
	for _, out := range mapped {
		for _, kv := range out {
			p := int(types.HashValue(kv.K) % uint64(w))
			parts[p] = append(parts[p], kv)
			pairs++
			bytes += kvSize(kv)
		}
	}
	e.cfg.Metrics.add(pairs, bytes)

	// Reduce phase.
	results := make([][]KV, w)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			part := parts[i]
			sort.SliceStable(part, func(a, b int) bool {
				return types.ValueCompare(part[a].K, part[b].K) < 0
			})
			var out []KV
			emit := func(k, v types.Value) { out = append(out, KV{k, v}) }
			for s := 0; s < len(part); {
				t := s
				for t < len(part) && types.ValueCompare(part[t].K, part[s].K) == 0 {
					t++
				}
				vs := make([]types.Value, 0, t-s)
				for _, kv := range part[s:t] {
					vs = append(vs, kv.V)
				}
				if err := job.Reducer.Reduce(part[s].K, vs, emit); err != nil {
					errs[i] = err
					return
				}
				s = t
			}
			results[i] = out
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []KV
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

// combine groups a single map task's output and applies the combiner.
func combine(c Reducer, out []KV) ([]KV, error) {
	sort.SliceStable(out, func(a, b int) bool {
		return types.ValueCompare(out[a].K, out[b].K) < 0
	})
	var combined []KV
	emit := func(k, v types.Value) { combined = append(combined, KV{k, v}) }
	for s := 0; s < len(out); {
		t := s
		for t < len(out) && types.ValueCompare(out[t].K, out[s].K) == 0 {
			t++
		}
		vs := make([]types.Value, 0, t-s)
		for _, kv := range out[s:t] {
			vs = append(vs, kv.V)
		}
		if err := c.Reduce(out[s].K, vs, emit); err != nil {
			return nil, err
		}
		s = t
	}
	return combined, nil
}

// IterativeDriver is the external control loop MapReduce needs for
// recursive computations (§2): it re-runs the job chain until the
// convergence callback says stop or maxIters is reached. Following the
// paper's lower-bound methodology the convergence test itself is free.
type IterativeDriver struct {
	Engine *Engine
	// OnIteration observes each finished iteration (for per-iteration
	// timing in the figures).
	OnIteration func(iter int, output []KV, elapsed time.Duration)
}

// RunIterative repeatedly applies step to the evolving state.
func (d *IterativeDriver) RunIterative(state []KV, step func(iter int, state []KV) (*Job, []KV, error),
	converged func(iter int, prev, next []KV) bool, maxIters int) ([]KV, int, error) {
	for iter := 1; iter <= maxIters; iter++ {
		start := time.Now()
		job, input, err := step(iter, state)
		if err != nil {
			return nil, iter, err
		}
		next, err := d.Engine.Run(job, input)
		if err != nil {
			return nil, iter, err
		}
		if d.OnIteration != nil {
			d.OnIteration(iter, next, time.Since(start))
		}
		stop := converged != nil && converged(iter, state, next)
		state = next
		if stop {
			return state, iter, nil
		}
	}
	return state, maxIters, nil
}

// ErrNoReducer is returned for jobs missing a reducer.
var ErrNoReducer = fmt.Errorf("mapred: job has no reducer")
