package mapred

import (
	"sort"
	"time"

	"github.com/rex-data/rex/internal/types"
)

// HaLoopEngine extends the MapReduce engine with HaLoop's loop-aware
// optimizations [Bu et al., VLDB 2010]: a reducer-input cache holding the
// loop-invariant relation so it is neither re-mapped nor re-shuffled in
// later iterations. Per the paper's lower-bound methodology (§6
// Platforms), building the cache costs nothing.
type haloopCache struct {
	parts [][]KV // per-reduce-partition invariant pairs
	index map[types.Value][]types.Value
}

// HaLoopEngine extends the MapReduce engine with HaLoop's loop-aware
// caches.
type HaLoopEngine struct {
	eng    *Engine
	caches map[string]*haloopCache
}

// NewHaLoopEngine wraps a MapReduce engine.
func NewHaLoopEngine(eng *Engine) *HaLoopEngine {
	return &HaLoopEngine{eng: eng, caches: map[string]*haloopCache{}}
}

// BuildCache installs the loop-invariant relation under cacheName,
// partitioned the same way the shuffle would and hash-indexed for
// mapper-side lookups. Free of charge (no metrics, no startup),
// reproducing the Hadoop-LB/HaLoop-LB accounting of §6.
func (h *HaLoopEngine) BuildCache(cacheName string, invariant []KV) {
	w := h.eng.cfg.Workers
	c := &haloopCache{
		parts: make([][]KV, w),
		index: make(map[types.Value][]types.Value, len(invariant)),
	}
	for _, kv := range invariant {
		p := int(types.HashValue(kv.K) % uint64(w))
		c.parts[p] = append(c.parts[p], kv)
		c.index[kv.K] = append(c.index[kv.K], kv.V)
	}
	h.caches[cacheName] = c
}

// CacheLookup exposes a cached invariant relation to map tasks (HaLoop's
// mapper-input cache): values for a key, or nil.
func (h *HaLoopEngine) CacheLookup(cacheName string, k types.Value) []types.Value {
	c, ok := h.caches[cacheName]
	if !ok {
		return nil
	}
	return c.index[k]
}

// Run executes one loop body over the variant input only; reduce groups
// are augmented with the reducer-input cache entries for their key.
func (h *HaLoopEngine) Run(job *Job, variant []KV, cacheName string) ([]KV, error) {
	time.Sleep(h.eng.cfg.StartupOverhead)
	defer h.eng.cfg.Metrics.jobDone()
	w := h.eng.cfg.Workers

	splits := make([][]KV, w)
	for i, kv := range variant {
		splits[i%w] = append(splits[i%w], kv)
	}
	mapped := make([][]KV, w)
	errs := make([]error, w)
	done := make(chan int, w)
	for i := 0; i < w; i++ {
		go func(i int) {
			defer func() { done <- i }()
			var out []KV
			emit := func(k, v types.Value) { out = append(out, KV{k, v}) }
			for _, kv := range splits[i] {
				if err := job.Mapper.Map(kv.K, kv.V, emit); err != nil {
					errs[i] = err
					return
				}
			}
			if job.Combiner != nil {
				combined, err := combine(job.Combiner, out)
				if err != nil {
					errs[i] = err
					return
				}
				out = combined
			}
			mapped[i] = out
		}(i)
	}
	for i := 0; i < w; i++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	parts := make([][]KV, w)
	var pairs, bytes int64
	for _, out := range mapped {
		for _, kv := range out {
			p := int(types.HashValue(kv.K) % uint64(w))
			parts[p] = append(parts[p], kv)
			pairs++
			bytes += kvSize(kv)
		}
	}
	h.eng.cfg.Metrics.add(pairs, bytes)

	cache := h.caches[cacheName]
	results := make([][]KV, w)
	for i := 0; i < w; i++ {
		go func(i int) {
			defer func() { done <- i }()
			part := parts[i]
			if cache != nil {
				// Reducer-input cache: merge the invariant pairs of this
				// partition (free: not shuffled, not counted).
				part = append(append([]KV{}, part...), cache.parts[i]...)
			}
			sort.SliceStable(part, func(a, b int) bool {
				return types.ValueCompare(part[a].K, part[b].K) < 0
			})
			var out []KV
			emit := func(k, v types.Value) { out = append(out, KV{k, v}) }
			for s := 0; s < len(part); {
				t := s
				for t < len(part) && types.ValueCompare(part[t].K, part[s].K) == 0 {
					t++
				}
				vs := make([]types.Value, 0, t-s)
				for _, kv := range part[s:t] {
					vs = append(vs, kv.V)
				}
				if err := job.Reducer.Reduce(part[s].K, vs, emit); err != nil {
					errs[i] = err
					return
				}
				s = t
			}
			results[i] = out
		}(i)
	}
	for i := 0; i < w; i++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []KV
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}
