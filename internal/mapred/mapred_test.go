package mapred

import (
	"fmt"
	"testing"
	"time"

	"github.com/rex-data/rex/internal/types"
)

func wordCountJob() *Job {
	return &Job{
		Name: "wordcount",
		Mapper: MapperFunc(func(k, v types.Value, emit func(k, v types.Value)) error {
			emit(v, int64(1))
			return nil
		}),
		Combiner: sumReducer(),
		Reducer:  sumReducer(),
	}
}

func sumReducer() Reducer {
	return ReducerFunc(func(k types.Value, vs []types.Value, emit func(k, v types.Value)) error {
		total := int64(0)
		for _, v := range vs {
			n, _ := types.AsInt(v)
			total += n
		}
		emit(k, total)
		return nil
	})
}

func TestWordCount(t *testing.T) {
	m := &Metrics{}
	eng := NewEngine(Config{Workers: 4, Metrics: m})
	var input []KV
	words := []string{"a", "b", "a", "c", "a", "b"}
	for i, w := range words {
		input = append(input, KV{int64(i), w})
	}
	out, err := eng.Run(wordCountJob(), input)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, kv := range out {
		counts[kv.K.(string)], _ = types.AsInt(kv.V)
	}
	if counts["a"] != 3 || counts["b"] != 2 || counts["c"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	jobs, pairs, bytes := m.Snapshot()
	if jobs != 1 || pairs == 0 || bytes == 0 {
		t.Fatalf("metrics: %d %d %d", jobs, pairs, bytes)
	}
	// The combiner must have collapsed duplicate keys per split before
	// the shuffle: at most one pair per (split, key).
	if pairs > int64(len(words)) {
		t.Fatalf("combiner should bound shuffle pairs, got %d", pairs)
	}
}

func TestMapperErrorPropagates(t *testing.T) {
	eng := NewEngine(Config{Workers: 2})
	job := &Job{
		Mapper: MapperFunc(func(k, v types.Value, emit func(k, v types.Value)) error {
			return fmt.Errorf("boom")
		}),
		Reducer: sumReducer(),
	}
	if _, err := eng.Run(job, []KV{{int64(1), int64(1)}}); err == nil {
		t.Fatal("mapper error must surface")
	}
}

func TestReducerErrorPropagates(t *testing.T) {
	eng := NewEngine(Config{Workers: 2})
	job := &Job{
		Mapper: MapperFunc(func(k, v types.Value, emit func(k, v types.Value)) error {
			emit(k, v)
			return nil
		}),
		Reducer: ReducerFunc(func(k types.Value, vs []types.Value, emit func(k, v types.Value)) error {
			return fmt.Errorf("boom")
		}),
	}
	if _, err := eng.Run(job, []KV{{int64(1), int64(1)}}); err == nil {
		t.Fatal("reducer error must surface")
	}
}

func TestIterativeDriver(t *testing.T) {
	eng := NewEngine(Config{Workers: 2})
	d := &IterativeDriver{Engine: eng}
	iterSeen := 0
	d.OnIteration = func(iter int, output []KV, _ time.Duration) { iterSeen = iter }
	// Doubling computation: value doubles each iteration until ≥ 100.
	state := []KV{{int64(0), int64(1)}}
	job := &Job{
		Mapper: MapperFunc(func(k, v types.Value, emit func(k, v types.Value)) error {
			n, _ := types.AsInt(v)
			emit(k, n*2)
			return nil
		}),
		Reducer: ReducerFunc(func(k types.Value, vs []types.Value, emit func(k, v types.Value)) error {
			emit(k, vs[0])
			return nil
		}),
	}
	final, iters, err := d.RunIterative(state,
		func(iter int, st []KV) (*Job, []KV, error) { return job, st, nil },
		func(iter int, prev, next []KV) bool {
			n, _ := types.AsInt(next[0].V)
			return n >= 100
		}, 50)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := types.AsInt(final[0].V)
	if n != 128 || iters != 7 || iterSeen != 7 {
		t.Fatalf("final=%d iters=%d seen=%d", n, iters, iterSeen)
	}
}

func TestHaLoopCacheCutsShuffle(t *testing.T) {
	// Same aggregate computed with the invariant relation shuffled every
	// time (Hadoop) vs cached (HaLoop): HaLoop must shuffle fewer bytes
	// and produce identical results.
	var invariant []KV
	for i := 0; i < 200; i++ {
		invariant = append(invariant, KV{int64(i % 10), int64(i)})
	}
	variant := []KV{{int64(3), int64(1000)}}

	runHadoop := func() (map[int64]int64, int64) {
		m := &Metrics{}
		eng := NewEngine(Config{Workers: 4, Metrics: m})
		out, err := eng.Run(&Job{
			Mapper: MapperFunc(func(k, v types.Value, emit func(k, v types.Value)) error {
				emit(k, v)
				return nil
			}),
			Reducer: sumReducer(),
		}, append(append([]KV{}, invariant...), variant...))
		if err != nil {
			t.Fatal(err)
		}
		res := map[int64]int64{}
		for _, kv := range out {
			res[kv.K.(int64)], _ = types.AsInt(kv.V)
		}
		_, _, bytes := m.Snapshot()
		return res, bytes
	}
	runHaLoop := func() (map[int64]int64, int64) {
		m := &Metrics{}
		eng := NewEngine(Config{Workers: 4, Metrics: m})
		hl := NewHaLoopEngine(eng)
		hl.BuildCache("inv", invariant)
		out, err := hl.Run(&Job{
			Mapper: MapperFunc(func(k, v types.Value, emit func(k, v types.Value)) error {
				emit(k, v)
				return nil
			}),
			Reducer: sumReducer(),
		}, variant, "inv")
		if err != nil {
			t.Fatal(err)
		}
		res := map[int64]int64{}
		for _, kv := range out {
			res[kv.K.(int64)], _ = types.AsInt(kv.V)
		}
		_, _, bytes := m.Snapshot()
		return res, bytes
	}

	wantRes, hadoopBytes := runHadoop()
	gotRes, haloopBytes := runHaLoop()
	if len(gotRes) != len(wantRes) {
		t.Fatalf("HaLoop result keys %d vs %d", len(gotRes), len(wantRes))
	}
	for k, v := range wantRes {
		if gotRes[k] != v {
			t.Fatalf("key %d: %d vs %d", k, gotRes[k], v)
		}
	}
	if haloopBytes >= hadoopBytes {
		t.Fatalf("HaLoop must shuffle less: %d vs %d", haloopBytes, hadoopBytes)
	}
}

func TestCacheLookup(t *testing.T) {
	eng := NewEngine(Config{Workers: 3})
	hl := NewHaLoopEngine(eng)
	hl.BuildCache("adj", []KV{{int64(1), "a"}, {int64(1), "b"}, {int64(2), "c"}})
	vs := hl.CacheLookup("adj", int64(1))
	if len(vs) != 2 {
		t.Fatalf("lookup = %v", vs)
	}
	if hl.CacheLookup("adj", int64(9)) != nil {
		t.Fatal("missing key should be nil")
	}
	if hl.CacheLookup("nope", int64(1)) != nil {
		t.Fatal("missing cache should be nil")
	}
}
