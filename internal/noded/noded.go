// Package noded implements the rexnode worker daemon: one OS process
// hosting one REX worker node over the TCP transport. The daemon serves a
// sequence of jobs — for each MsgJob it rebuilds the catalog, plan, and
// its data partition from the job spec, runs the worker event loop until
// the driver tears the query down, and then waits for the next job. It
// also answers daemon-level control traffic (stats requests, kill/revive
// failure injection, quit).
//
// With a data directory configured, the daemon becomes crash-durable: its
// store is a paged spill-to-disk store, the active job description is
// persisted next to it, and Restore rebuilds the whole runtime — job,
// plan, committed store state, running worker loop — at boot. A SIGKILLed
// daemon respawned on the same address and data directory rejoins the
// cluster with every committed round intact.
package noded

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/job"
	"github.com/rex-data/rex/internal/pagestore"
	"github.com/rex-data/rex/internal/storage"
)

// jobFile is the persisted active-job description inside the data
// directory; jobMagic versions its framing.
const (
	jobFile  = "job.bin"
	jobMagic = "REXJOB01"
)

// Node is one worker daemon instance.
type Node struct {
	tr   *cluster.TCPTransport
	logw io.Writer
	jobs int

	// dataDir, when non-empty, roots the daemon's durable state: the
	// paged store lives under it and the active job is persisted to it.
	// storeMu guards store and ckpts: Close may tear them down from a
	// different goroutine than the Serve loop that builds and uses them.
	dataDir   string
	poolPages int
	storeMu   sync.Mutex
	store     storage.Durable // nil when running in-memory
	ckpts     *storage.CheckpointStore

	// current job state, kept across kill/revive so a revived node can
	// rejoin the next run of the same job.
	worker   *exec.Worker
	loopDone chan struct{}
}

// Listen binds the daemon's listener (":0" picks a free port).
func Listen(addr string, logw io.Writer) (*Node, error) {
	tr, err := cluster.ListenTCPNode(addr)
	if err != nil {
		return nil, err
	}
	if logw == nil {
		logw = io.Discard
	}
	return &Node{tr: tr, logw: logw}, nil
}

// UseDataDir roots the daemon's durable state under dir: its store
// becomes a paged spill-to-disk store with a poolPages-frame buffer pool
// (0 = default), and the active job survives a crash. Call before Serve
// or Restore.
func (n *Node) UseDataDir(dir string, poolPages int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n.dataDir = dir
	n.poolPages = poolPages
	return nil
}

// Addr reports the bound listen address.
func (n *Node) Addr() string { return n.tr.Addr() }

// Close tears the daemon down without waiting for a MsgQuit.
func (n *Node) Close() {
	_ = n.tr.Close()
	n.closeStore()
}

// closeStore flushes and closes the durable store, sealing dirty state
// into a checkpoint image (graceful shutdown).
func (n *Node) closeStore() {
	n.storeMu.Lock()
	store, ckpts := n.store, n.ckpts
	n.store, n.ckpts = nil, nil
	n.storeMu.Unlock()
	if store != nil {
		if err := store.Close(); err != nil {
			fmt.Fprintf(n.logw, "rexnode: store close: %v\n", err)
		}
	}
	if ckpts != nil {
		if err := ckpts.Close(); err != nil {
			fmt.Fprintf(n.logw, "rexnode: checkpoint close: %v\n", err)
		}
	}
}

// PoolStats reports the durable store's cumulative buffer-pool counters
// (zero when running in-memory).
func (n *Node) PoolStats() storage.PoolStats {
	n.storeMu.Lock()
	defer n.storeMu.Unlock()
	if ps, ok := n.store.(storage.PoolStatter); ok {
		return ps.PoolStats()
	}
	return storage.PoolStats{}
}

// Serve processes daemon control traffic until MsgQuit (or Close). Engine
// traffic flows to the worker loop goroutine, so Serve stays responsive
// during query execution.
func (n *Node) Serve() error {
	for {
		msg, ok := n.tr.Control().Get()
		if !ok {
			n.closeStore()
			return nil // transport closed
		}
		switch msg.Kind {
		case cluster.MsgQuit:
			// Close first: it shuts the inbox, so a worker loop blocked
			// mid-query wakes up and waitLoop cannot deadlock.
			_ = n.tr.Close()
			n.waitLoop()
			n.closeStore()
			return nil
		case cluster.MsgStatsReq:
			n.tr.SendControl(cluster.Message{
				From: n.tr.Self(), Kind: cluster.MsgStats, Payload: n.tr.StatsPayload(),
			})
		case cluster.MsgJob:
			if err := n.startJob(msg); err != nil {
				fmt.Fprintf(n.logw, "rexnode: job: %v\n", err)
				// SendControl with the job's own generation: the node may
				// be unconfigured (decode/Configure failure), where the
				// worker-path SendToRequestor would drop the reply and
				// leave the driver waiting out its ready timeout.
				n.tr.SendControl(cluster.Message{
					From: msg.To, Kind: cluster.MsgError, Table: err.Error(), Job: msg.Job,
				})
			}
		case cluster.MsgKill:
			// The transport already marked this node dead and closed its
			// inbox; wait for the worker loop to notice so a revive
			// cannot race two loops over one inbox.
			n.waitLoop()
			// Push a final stats frame: the driver skips dead nodes in its
			// end-of-run metrics sync, so without this the victim's bytes
			// would vanish from the run's accounting (SendControl works
			// while the simulated node is "dead" — the process is alive).
			n.tr.SendControl(cluster.Message{
				From: n.tr.Self(), Kind: cluster.MsgStats, Payload: n.tr.StatsPayload(),
			})
			fmt.Fprintf(n.logw, "rexnode: node %d killed\n", n.tr.Self())
		case cluster.MsgRevive:
			// Rejoin the current job with a fresh worker: a revived node
			// lost its volatile state, and per-epoch state is rebuilt on
			// the next MsgStart anyway.
			n.waitLoop()
			if n.worker != nil {
				n.spawnLoop()
			}
			fmt.Fprintf(n.logw, "rexnode: node %d revived\n", n.tr.Self())
		}
	}
}

// startJob configures the transport for the new generation, rebuilds the
// job's runtime from its spec, and starts the worker loop.
func (n *Node) startJob(msg cluster.Message) error {
	spec, err := job.Decode(msg.Payload)
	if err != nil {
		return err
	}
	self := msg.To
	// Stop the previous job's worker loop BEFORE the generation bumps:
	// the transport stamps outgoing frames with its current generation at
	// send time, so a loop joined only after Configure could sign its
	// final stragglers with the new job's generation and smuggle them
	// past the staleness filters into the next run.
	n.tr.Quiesce()
	n.waitLoop()
	if err := n.tr.Configure(self, spec.Peers, msg.Job); err != nil {
		return err
	}
	if n.worker != nil {
		n.worker.DropQuery()
		n.worker = nil
	}
	if n.dataDir != "" {
		// Persist the job before building it: a crash at any later point
		// must find the description a respawn restores from.
		if err := writeJobFile(n.dataDir, msg.Job, self, msg.Payload); err != nil {
			return err
		}
	}
	if err := n.buildJob(spec, self, false); err != nil {
		return err
	}
	n.spawnLoop()
	n.tr.SendControl(cluster.Message{From: self, Kind: cluster.MsgJobReady})
	fmt.Fprintf(n.logw, "rexnode: node %d ready for %s job (gen %d, %d peers)\n",
		self, spec.Workload, msg.Job, len(spec.Peers))
	return nil
}

// Restore rebuilds the daemon's runtime from its data directory: the
// persisted job is decoded, the transport configured, the paged store
// reopened on its last committed state, and the worker loop started. It
// reports whether a job was restored. Call after Listen (the restored
// runtime needs the listener) and before announcing the address to a
// spawner — the driver's respawn handshake treats the announcement as
// "ready to serve the restored job".
func (n *Node) Restore() (bool, error) {
	if n.dataDir == "" {
		return false, nil
	}
	gen, self, payload, err := readJobFile(n.dataDir)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	spec, err := job.Decode(payload)
	if err != nil {
		return false, err
	}
	if err := n.tr.Configure(self, spec.Peers, gen); err != nil {
		return false, err
	}
	if err := n.buildJob(spec, self, true); err != nil {
		return false, err
	}
	n.spawnLoop()
	n.storeMu.Lock()
	committed := int64(-1)
	if n.store != nil {
		committed = n.store.CommittedRound()
	}
	n.storeMu.Unlock()
	fmt.Fprintf(n.logw, "rexnode: node %d restored %s job (gen %d, committed round %d)\n",
		self, spec.Workload, gen, committed)
	return true, nil
}

// buildJob constructs the job's catalog, plan, store, and worker.
// restore=true reuses the store's committed on-disk state instead of
// loading the spec's generated partition; if the store turns out to hold
// no committed data (the crash hit before the initial load was sealed),
// it falls back to a fresh load.
func (n *Node) buildJob(spec *job.Spec, self cluster.NodeID, restore bool) error {
	cat, plan, tables, err := spec.Build()
	if err != nil {
		return err
	}
	ring := cluster.NewRing(len(spec.Peers), spec.VNodes, spec.Replication)
	var store storage.Backend
	var durable storage.Durable
	n.closeStore()
	if n.dataDir != "" {
		storeDir := filepath.Join(n.dataDir, "store")
		if !restore {
			// A new job's data replaces the previous job's: wipe before
			// opening so stale durable state cannot leak across jobs.
			if err := os.RemoveAll(storeDir); err != nil {
				return err
			}
		}
		pool := spec.BufferPoolPages
		if pool <= 0 {
			pool = n.poolPages
		}
		ps, err := pagestore.Open(storeDir, self, pool)
		if err != nil {
			return err
		}
		if restore && ps.CommittedRound() < 0 {
			restore = false // nothing durable: crashed before the base commit
		}
		n.storeMu.Lock()
		n.store = ps
		n.storeMu.Unlock()
		store, durable = ps, ps
	} else {
		store = storage.NewStore(self)
	}
	ckpts := storage.NewCheckpointStore()
	if n.dataDir != "" {
		// The §4.3 Δ-set checkpoints persist next to the page files and
		// survive a respawn alongside the store image.
		if err := ckpts.UseDir(filepath.Join(n.dataDir, "store", "ckpt")); err != nil {
			return err
		}
		n.storeMu.Lock()
		n.ckpts = ckpts
		n.storeMu.Unlock()
	}
	if !restore {
		stores := make([]storage.Backend, len(spec.Peers))
		stores[self] = store
		loader := &storage.Loader{Ring: ring, Stores: stores}
		for _, tb := range tables {
			if err := loader.Load(tb.Name, tb.KeyCol, tb.Tuples); err != nil {
				return err
			}
		}
		if durable != nil {
			// Seal the loaded base as committed round 0 so a crash at any
			// later point recovers to it (and a respawn can skip the load).
			if err := durable.Commit(0); err != nil {
				return err
			}
		}
	}
	n.jobs++
	n.worker = exec.NewWorker(exec.WorkerConfig{
		Node: self, Transport: n.tr, Store: store,
		Checkpoints: ckpts, Catalog: cat, Ring: ring,
		Plan: plan, QueryID: fmt.Sprintf("node%d-job%d", self, n.jobs),
		Options: spec.Options(),
	})
	return nil
}

// writeJobFile atomically persists the active job (generation, node id,
// encoded spec) into dir.
func writeJobFile(dir string, gen int, self cluster.NodeID, payload []byte) error {
	buf := []byte(jobMagic)
	buf = binary.AppendVarint(buf, int64(gen))
	buf = binary.AppendVarint(buf, int64(self))
	buf = append(buf, payload...)
	tmp := filepath.Join(dir, jobFile+".tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, jobFile))
}

// readJobFile loads the persisted job description from dir.
func readJobFile(dir string) (gen int, self cluster.NodeID, payload []byte, err error) {
	buf, err := os.ReadFile(filepath.Join(dir, jobFile))
	if err != nil {
		return 0, 0, nil, err
	}
	if len(buf) < len(jobMagic) || string(buf[:len(jobMagic)]) != jobMagic {
		return 0, 0, nil, fmt.Errorf("noded: corrupt %s", jobFile)
	}
	rest := buf[len(jobMagic):]
	g, used := binary.Varint(rest)
	if used <= 0 {
		return 0, 0, nil, fmt.Errorf("noded: corrupt %s", jobFile)
	}
	rest = rest[used:]
	s, used := binary.Varint(rest)
	if used <= 0 {
		return 0, 0, nil, fmt.Errorf("noded: corrupt %s", jobFile)
	}
	return int(g), cluster.NodeID(s), rest[used:], nil
}

// spawnLoop runs the current worker's event loop on its own goroutine.
func (n *Node) spawnLoop() {
	done := make(chan struct{})
	w := n.worker
	go func() {
		defer close(done)
		w.Loop()
	}()
	n.loopDone = done
}

// waitLoop joins the worker loop goroutine if one was ever started. The
// loop exits on shutdown (job end) or on a closed inbox (kill or
// reconfigure), so this only blocks while the worker drains its current
// message.
func (n *Node) waitLoop() {
	if n.loopDone != nil {
		<-n.loopDone
		n.loopDone = nil
	}
}
