// Package noded implements the rexnode worker daemon: one OS process
// hosting one REX worker node over the TCP transport. The daemon serves a
// sequence of jobs — for each MsgJob it rebuilds the catalog, plan, and
// its data partition from the job spec, runs the worker event loop until
// the driver tears the query down, and then waits for the next job. It
// also answers daemon-level control traffic (stats requests, kill/revive
// failure injection, quit).
package noded

import (
	"fmt"
	"io"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/job"
	"github.com/rex-data/rex/internal/storage"
)

// Node is one worker daemon instance.
type Node struct {
	tr   *cluster.TCPTransport
	logw io.Writer
	jobs int

	// current job state, kept across kill/revive so a revived node can
	// rejoin the next run of the same job.
	worker   *exec.Worker
	loopDone chan struct{}
}

// Listen binds the daemon's listener (":0" picks a free port).
func Listen(addr string, logw io.Writer) (*Node, error) {
	tr, err := cluster.ListenTCPNode(addr)
	if err != nil {
		return nil, err
	}
	if logw == nil {
		logw = io.Discard
	}
	return &Node{tr: tr, logw: logw}, nil
}

// Addr reports the bound listen address.
func (n *Node) Addr() string { return n.tr.Addr() }

// Close tears the daemon down without waiting for a MsgQuit.
func (n *Node) Close() { _ = n.tr.Close() }

// Serve processes daemon control traffic until MsgQuit (or Close). Engine
// traffic flows to the worker loop goroutine, so Serve stays responsive
// during query execution.
func (n *Node) Serve() error {
	for {
		msg, ok := n.tr.Control().Get()
		if !ok {
			return nil // transport closed
		}
		switch msg.Kind {
		case cluster.MsgQuit:
			// Close first: it shuts the inbox, so a worker loop blocked
			// mid-query wakes up and waitLoop cannot deadlock.
			_ = n.tr.Close()
			n.waitLoop()
			return nil
		case cluster.MsgStatsReq:
			n.tr.SendControl(cluster.Message{
				From: n.tr.Self(), Kind: cluster.MsgStats, Payload: n.tr.StatsPayload(),
			})
		case cluster.MsgJob:
			if err := n.startJob(msg); err != nil {
				fmt.Fprintf(n.logw, "rexnode: job: %v\n", err)
				// SendControl with the job's own generation: the node may
				// be unconfigured (decode/Configure failure), where the
				// worker-path SendToRequestor would drop the reply and
				// leave the driver waiting out its ready timeout.
				n.tr.SendControl(cluster.Message{
					From: msg.To, Kind: cluster.MsgError, Table: err.Error(), Job: msg.Job,
				})
			}
		case cluster.MsgKill:
			// The transport already marked this node dead and closed its
			// inbox; wait for the worker loop to notice so a revive
			// cannot race two loops over one inbox.
			n.waitLoop()
			// Push a final stats frame: the driver skips dead nodes in its
			// end-of-run metrics sync, so without this the victim's bytes
			// would vanish from the run's accounting (SendControl works
			// while the simulated node is "dead" — the process is alive).
			n.tr.SendControl(cluster.Message{
				From: n.tr.Self(), Kind: cluster.MsgStats, Payload: n.tr.StatsPayload(),
			})
			fmt.Fprintf(n.logw, "rexnode: node %d killed\n", n.tr.Self())
		case cluster.MsgRevive:
			// Rejoin the current job with a fresh worker: a revived node
			// lost its volatile state, and per-epoch state is rebuilt on
			// the next MsgStart anyway.
			n.waitLoop()
			if n.worker != nil {
				n.spawnLoop()
			}
			fmt.Fprintf(n.logw, "rexnode: node %d revived\n", n.tr.Self())
		}
	}
}

// startJob configures the transport for the new generation, rebuilds the
// job's runtime from its spec, and starts the worker loop.
func (n *Node) startJob(msg cluster.Message) error {
	spec, err := job.Decode(msg.Payload)
	if err != nil {
		return err
	}
	self := msg.To
	if err := n.tr.Configure(self, spec.Peers, msg.Job); err != nil {
		return err
	}
	// Configure closed the previous inbox; reap the stale loop before its
	// replacement starts.
	n.waitLoop()
	if n.worker != nil {
		n.worker.DropQuery()
		n.worker = nil
	}

	cat, plan, tables, err := spec.Build()
	if err != nil {
		return err
	}
	ring := cluster.NewRing(len(spec.Peers), spec.VNodes, spec.Replication)
	store := storage.NewStore(self)
	stores := make([]*storage.Store, len(spec.Peers))
	stores[self] = store
	loader := &storage.Loader{Ring: ring, Stores: stores}
	for _, tb := range tables {
		if err := loader.Load(tb.Name, tb.KeyCol, tb.Tuples); err != nil {
			return err
		}
	}
	n.jobs++
	n.worker = exec.NewWorker(exec.WorkerConfig{
		Node: self, Transport: n.tr, Store: store,
		Checkpoints: storage.NewCheckpointStore(), Catalog: cat, Ring: ring,
		Plan: plan, QueryID: fmt.Sprintf("node%d-job%d", self, n.jobs),
		Options: spec.Options(),
	})
	n.spawnLoop()
	n.tr.SendControl(cluster.Message{From: self, Kind: cluster.MsgJobReady})
	fmt.Fprintf(n.logw, "rexnode: node %d ready for %s job (gen %d, %d peers)\n",
		self, spec.Workload, msg.Job, len(spec.Peers))
	return nil
}

// spawnLoop runs the current worker's event loop on its own goroutine.
func (n *Node) spawnLoop() {
	done := make(chan struct{})
	w := n.worker
	go func() {
		defer close(done)
		w.Loop()
	}()
	n.loopDone = done
}

// waitLoop joins the worker loop goroutine if one was ever started. The
// loop exits on shutdown (job end) or on a closed inbox (kill or
// reconfigure), so this only blocks while the worker drains its current
// message.
func (n *Node) waitLoop() {
	if n.loopDone != nil {
		<-n.loopDone
		n.loopDone = nil
	}
}
