package rex

// One testing.B benchmark per paper table/figure (run the full experiment
// harness with cmd/rexbench for the paper-style series), plus ablation
// benches for the design choices DESIGN.md calls out.

import (
	"io"
	"testing"
	"time"

	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/bench"
	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/types"
)

// benchScale is small enough for -bench=. to finish in minutes.
func benchScale() bench.Scale {
	return bench.Scale{
		Nodes: 4, Workers: 4,
		DBPediaVertices: 600, TwitterVertices: 800,
		GeoBasePoints: 150, LineItemRows: 5000,
		HadoopStartup: time.Millisecond, Epsilon: 0.001,
	}
}

func benchFigure(b *testing.B, fn func(w io.Writer, sc bench.Scale) error) {
	b.Helper()
	sc := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2Convergence(b *testing.B)         { benchFigure(b, bench.Fig2) }
func BenchmarkFig3DeltaSets(b *testing.B)           { benchFigure(b, bench.Fig3) }
func BenchmarkFig4Aggregation(b *testing.B)         { benchFigure(b, bench.Fig4) }
func BenchmarkFig5KMeans(b *testing.B)              { benchFigure(b, bench.Fig5) }
func BenchmarkFig6PageRankDBPedia(b *testing.B)     { benchFigure(b, bench.Fig6) }
func BenchmarkFig7ShortestPathDBPedia(b *testing.B) { benchFigure(b, bench.Fig7) }
func BenchmarkFig8PageRankTwitter(b *testing.B)     { benchFigure(b, bench.Fig8) }
func BenchmarkFig9ShortestPathTwitter(b *testing.B) { benchFigure(b, bench.Fig9) }
func BenchmarkFig10Scalability(b *testing.B)        { benchFigure(b, bench.Fig10) }
func BenchmarkFig11Bandwidth(b *testing.B)          { benchFigure(b, bench.Fig11) }
func BenchmarkFig12Recovery(b *testing.B)           { benchFigure(b, bench.Fig12) }

// --- ablations ---------------------------------------------------------

func pagerankCluster(b *testing.B, g *datagen.Graph, delta bool) (*catalog.Catalog, *exec.Engine, *exec.PlanSpec) {
	b.Helper()
	cat := catalog.New()
	if err := cat.AddTable(&catalog.Table{
		Name: "graph", Schema: types.MustSchema("srcId:Integer", "destId:Integer"), PartitionKey: 0,
	}); err != nil {
		b.Fatal(err)
	}
	cfg := algos.PageRankConfig{Epsilon: 0.001, Delta: delta, MaxIterations: 25}
	jn, wn, err := algos.RegisterPageRank(cat, cfg)
	if err != nil {
		b.Fatal(err)
	}
	eng := exec.NewEngine(4, 32, 3, cat)
	if err := eng.Load("graph", 0, g.Edges); err != nil {
		b.Fatal(err)
	}
	return cat, eng, algos.PageRankPlan(cfg, jn, wn)
}

// BenchmarkAblationDelta is the headline ablation: delta vs no-delta
// iteration on the same engine and data.
func BenchmarkAblationDelta(b *testing.B) {
	g := datagen.DBPediaGraph(800, 1)
	for _, mode := range []struct {
		name  string
		delta bool
	}{{"delta", true}, {"nodelta", false}} {
		b.Run(mode.name, func(b *testing.B) {
			_, eng, plan := pagerankCluster(b, g, mode.delta)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(plan, exec.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBatchSize varies the transport batching granularity.
func BenchmarkAblationBatchSize(b *testing.B) {
	g := datagen.DBPediaGraph(800, 1)
	for _, size := range []int{16, 256, 4096} {
		b.Run(types.AsString(int64(size)), func(b *testing.B) {
			_, eng, plan := pagerankCluster(b, g, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(plan, exec.Options{BatchSize: size}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCheckpoint measures the incremental-checkpoint overhead
// during failure-free execution.
func BenchmarkAblationCheckpoint(b *testing.B) {
	g := datagen.DBPediaGraph(800, 1)
	for _, ck := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(ck.name, func(b *testing.B) {
			_, eng, plan := pagerankCluster(b, g, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(plan, exec.Options{Checkpoint: ck.on}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRing varies virtual-node counts (partition balance vs
// ring lookup cost).
func BenchmarkAblationRing(b *testing.B) {
	for _, vnodes := range []int{4, 64, 512} {
		b.Run(types.AsString(int64(vnodes)), func(b *testing.B) {
			ring := cluster.NewRing(8, vnodes, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ring.Owners(types.HashValue(int64(i)))
			}
		})
	}
}

// BenchmarkCodec measures the wire codec (every cross-node byte passes
// through it).
func BenchmarkCodec(b *testing.B) {
	batch := make([]types.Delta, 256)
	for i := range batch {
		batch[i] = types.Insert(types.NewTuple(int64(i), float64(i)*1.5, "payload"))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := types.EncodeBatch(batch)
		if _, err := types.DecodeBatch(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPreAgg measures pre-aggregation pushdown (§5.2) on the
// Fig. 4-style aggregation: combiner on vs off ahead of the rehash.
func BenchmarkAblationPreAgg(b *testing.B) {
	rows := datagen.LineItems(20000, 4)
	for _, pre := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(pre.name, func(b *testing.B) {
			cat := catalog.New()
			if err := cat.AddTable(&catalog.Table{
				Name: "lineitem", Schema: types.MustSchema(datagen.LineItemSchema...), PartitionKey: 0,
			}); err != nil {
				b.Fatal(err)
			}
			eng := exec.NewEngine(4, 32, 2, cat)
			if err := eng.Load("lineitem", 0, rows); err != nil {
				b.Fatal(err)
			}
			p := exec.NewPlanSpec()
			scan := p.Add(&exec.OpSpec{Kind: exec.OpScan, Table: "lineitem"})
			proj := p.Add(&exec.OpSpec{
				Kind: exec.OpProject, Inputs: []int{scan.ID},
				Exprs: []expr.Expr{
					expr.NewCol(1, types.KindInt, "linenumber"),
					expr.NewCol(5, types.KindFloat, "tax"),
				},
			})
			upstream := proj.ID
			if pre.on {
				pa := p.Add(&exec.OpSpec{
					Kind: exec.OpPreAgg, Inputs: []int{proj.ID}, GroupKey: []int{0},
					Aggs: []exec.AggSpec{{Fn: "sum", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "tax")}}},
				})
				upstream = pa.ID
			}
			rh := p.Add(&exec.OpSpec{Kind: exec.OpRehash, Inputs: []int{upstream}, HashKey: []int{0}})
			gb := p.Add(&exec.OpSpec{
				Kind: exec.OpGroupBy, Inputs: []int{rh.ID}, GroupKey: []int{0},
				Aggs: []exec.AggSpec{{Fn: "sum", Args: []expr.Expr{expr.NewCol(1, types.KindFloat, "tax")}}},
			})
			p.RootID = gb.ID
			b.ResetTimer()
			var bytes int64
			for i := 0; i < b.N; i++ {
				res, err := eng.Run(p, exec.Options{})
				if err != nil {
					b.Fatal(err)
				}
				bytes = res.BytesSent
			}
			b.ReportMetric(float64(bytes), "bytes/query")
		})
	}
}

// BenchmarkAblationReplication measures storage/checkpoint replication
// factor 1 vs 3 on a checkpointed recursive query.
func BenchmarkAblationReplication(b *testing.B) {
	g := datagen.DBPediaGraph(800, 1)
	for _, repl := range []int{1, 3} {
		b.Run(types.AsString(int64(repl)), func(b *testing.B) {
			cat := catalog.New()
			if err := cat.AddTable(&catalog.Table{
				Name: "graph", Schema: types.MustSchema("srcId:Integer", "destId:Integer"), PartitionKey: 0,
			}); err != nil {
				b.Fatal(err)
			}
			cfg := algos.PageRankConfig{Epsilon: 0.001, Delta: true, MaxIterations: 25}
			jn, wn, err := algos.RegisterPageRank(cat, cfg)
			if err != nil {
				b.Fatal(err)
			}
			eng := exec.NewEngine(4, 32, repl, cat)
			if err := eng.Load("graph", 0, g.Edges); err != nil {
				b.Fatal(err)
			}
			plan := algos.PageRankPlan(cfg, jn, wn)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(plan, exec.Options{Checkpoint: true}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
