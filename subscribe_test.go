package rex

import (
	"context"
	"runtime"
	"testing"

	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/bench"
	"github.com/rex-data/rex/internal/types"
)

// foldStream applies n batches from the stream into a replayed view.
func foldStream(t *testing.T, st *DeltaStream, n int, view *streamFold) {
	t.Helper()
	for i := 0; i < n; i++ {
		b, ok := st.Next()
		if !ok {
			t.Fatalf("stream ended after %d of %d batches: %v", i, n, st.Err())
		}
		view.apply(b.Deltas)
	}
}

// streamFold replays a delta stream into the relation it describes.
type streamFold struct{ live []Tuple }

func (f *streamFold) apply(batch []Delta) {
	for _, d := range batch {
		switch d.Op {
		case types.OpInsert, types.OpUpdate:
			f.live = append(f.live, d.Tup)
		case types.OpDelete:
			f.remove(d.Tup)
		case types.OpReplace:
			f.remove(d.Old)
			f.live = append(f.live, d.Tup)
		}
	}
}

func (f *streamFold) remove(t Tuple) {
	for i, x := range f.live {
		if x != nil && x.Equal(t) {
			f.live[i] = f.live[len(f.live)-1]
			f.live = f.live[:len(f.live)-1]
			return
		}
	}
}

// incEdges are the deterministic graph changes the equivalence tests feed
// in rounds: shortcuts from the reachable core into higher-numbered
// vertices, so each round genuinely re-derives distances through resident
// state.
func incEdges() [][]Tuple {
	return [][]Tuple{
		{NewTuple(int64(0), int64(171)), NewTuple(int64(171), int64(243))},
		{NewTuple(int64(2), int64(222)), NewTuple(int64(222), int64(223))},
		{NewTuple(int64(1), int64(257))},
	}
}

// subscribeSSSP opens a session on the given options, subscribes the
// incremental shortest-path query, feeds the rounds through
// Session.Insert (which must route into the live subscription), and
// returns the folded view hash plus the per-round stats.
func subscribeSSSP(t *testing.T, opts ...Option) (string, []RoundStats) {
	t.Helper()
	ctx := context.Background()
	sess, err := Open(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sub, err := sess.Subscribe(ctx, algos.IncSSSPQuery, WithMaxStrata(300))
	if err != nil {
		t.Fatal(err)
	}
	st := sub.Stream()
	view := &streamFold{}
	rounds := sub.Rounds()
	if len(rounds) != 1 {
		t.Fatalf("after Subscribe: %d rounds", len(rounds))
	}
	foldStream(t, st, rounds[0].Batches, view)
	if len(view.live) == 0 {
		t.Fatal("initial fixpoint yielded no tuples")
	}
	for _, edges := range incEdges() {
		if err := sess.Insert("graph", edges...); err != nil {
			t.Fatal(err)
		}
		rs := sub.Rounds()
		last := rs[len(rs)-1]
		foldStream(t, st, last.Batches, view)
	}
	allRounds := sub.Rounds()
	if err := sub.Close(); err != nil {
		t.Fatalf("subscription close: %v", err)
	}
	if _, ok := st.Next(); ok {
		t.Fatal("stream must end after Close")
	}
	if err := st.Err(); err != nil {
		t.Fatalf("clean close errored the stream: %v", err)
	}

	// The session must serve ordinary queries again, over the REVISED base
	// tables: in-process the stores absorbed the deltas, over TCP the next
	// job replays the session's change log.
	res, err := sess.QueryCtx(context.Background(), algos.IncSSSPQuery)
	if err != nil {
		t.Fatalf("query after subscription: %v", err)
	}
	gotHash := bench.ResultHash(view.live)
	if h := bench.ResultHash(res.Tuples); h != gotHash {
		t.Fatalf("folded subscription %s != post-subscription query %s", gotHash, h)
	}
	return gotHash, allRounds
}

// recomputeSSSP is the from-scratch reference: a fresh session whose base
// tables had the same changes applied BEFORE the (single) query ran.
func recomputeSSSP(t *testing.T) (string, int64) {
	t.Helper()
	sess, err := Open(context.Background(), WithInProc(3),
		WithDataset("sssp", 300, 1), WithHandlers("sssp-inc"))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for _, edges := range incEdges() {
		if err := sess.Insert("graph", edges...); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.QueryCtx(context.Background(), algos.IncSSSPQuery)
	if err != nil {
		t.Fatal(err)
	}
	return bench.ResultHash(res.Tuples), res.BytesSent
}

// TestSubscribeIncrementalEquivalenceInProc is the acceptance property on
// the in-process transport: incremental ingestion through a Subscription
// equals a from-scratch Query after the same base-table changes, for fewer
// shipped bytes.
func TestSubscribeIncrementalEquivalenceInProc(t *testing.T) {
	wantHash, recomputeBytes := recomputeSSSP(t)
	gotHash, rounds := subscribeSSSP(t, WithInProc(3),
		WithDataset("sssp", 300, 1), WithHandlers("sssp-inc"))
	if gotHash != wantHash {
		t.Fatalf("incremental %s != recompute %s", gotHash, wantHash)
	}
	var incBytes int64
	for _, r := range rounds[1:] {
		incBytes += r.BytesSent
	}
	if incBytes <= 0 || incBytes >= recomputeBytes {
		t.Fatalf("incremental rounds shipped %d bytes, recompute %d — standing must ship fewer", incBytes, recomputeBytes)
	}
}

// TestSubscribeIncrementalEquivalenceTCP is the same property across real
// worker processes: MsgIngest frames over sockets, daemons' stores revised
// in place, and the post-subscription query rebuilt from the replayed
// change log.
func TestSubscribeIncrementalEquivalenceTCP(t *testing.T) {
	wantHash, _ := recomputeSSSP(t)
	addrs := startDaemons(t, 3)
	gotHash, rounds := subscribeSSSP(t, WithTCPPeers(addrs...),
		WithDataset("sssp", 300, 1), WithHandlers("sssp-inc"))
	if gotHash != wantHash {
		t.Fatalf("tcp incremental %s != inproc recompute %s", gotHash, wantHash)
	}
	for _, r := range rounds[1:] {
		if r.BytesSent <= 0 {
			t.Fatalf("round %d reported no socket bytes", r.Round)
		}
	}
}

// TestSubscribeAggBothTransports runs a non-recursive standing aggregation
// through insert AND delete rounds on both transports and checks the
// folded stream equals a from-scratch query over the revised table.
func TestSubscribeAggBothTransports(t *testing.T) {
	const q = `SELECT srcId, count(*) FROM graph GROUP BY srcId`
	ins := []Tuple{NewTuple(int64(7), int64(9)), NewTuple(int64(7), int64(11)), NewTuple(int64(500), int64(1))}
	del := []Tuple{NewTuple(int64(7), int64(9))}

	run := func(t *testing.T, opts ...Option) string {
		ctx := context.Background()
		sess, err := Open(ctx, opts...)
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		sub, err := sess.Subscribe(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		view := &streamFold{}
		st := sub.Stream()
		foldStream(t, st, sub.Rounds()[0].Batches, view)
		if err := sess.Insert("graph", ins...); err != nil {
			t.Fatal(err)
		}
		if err := sess.Delete("graph", del...); err != nil {
			t.Fatal(err)
		}
		rounds := sub.Rounds()
		for _, r := range rounds[1:] {
			foldStream(t, st, r.Batches, view)
		}
		if err := sub.Close(); err != nil {
			t.Fatal(err)
		}
		res, err := sess.QueryCtx(context.Background(), q)
		if err != nil {
			t.Fatalf("query after subscription: %v", err)
		}
		got := bench.ResultHash(view.live)
		if h := bench.ResultHash(res.Tuples); h != got {
			t.Fatalf("folded view %s != recomputed query %s", got, h)
		}
		return got
	}

	inproc := run(t, WithInProc(3), WithDataset("dbpedia", 200, 2))
	addrs := startDaemons(t, 3)
	tcp := run(t, WithTCPPeers(addrs...), WithDataset("dbpedia", 200, 2))
	if inproc != tcp {
		t.Fatalf("transport mismatch: inproc %s tcp %s", inproc, tcp)
	}
}

// TestSubscriptionLifecycleLeaks asserts no goroutines leak when a
// subscription is closed explicitly, and when Session.Close has to cancel
// a still-live subscription itself.
func TestSubscriptionLifecycleLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx := context.Background()

	// Explicit Subscription.Close, then Session.Close.
	sess, err := Open(ctx, WithInProc(2), WithDataset("sssp", 120, 1), WithHandlers("sssp-inc"))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := sess.Subscribe(ctx, algos.IncSSSPQuery, WithMaxStrata(200))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Ingest(ctx, "graph", []Delta{Insert(NewTuple(int64(0), int64(90)))}); err != nil {
		t.Fatal(err)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	assertGoroutinesSettle(t, base)

	// Session.Close with the subscription still live (stream abandoned,
	// batches unread) must cancel it and not deadlock.
	sess, err = Open(ctx, WithInProc(2), WithDataset("sssp", 120, 1), WithHandlers("sssp-inc"))
	if err != nil {
		t.Fatal(err)
	}
	sub, err = sess.Subscribe(ctx, algos.IncSSSPQuery, WithMaxStrata(200))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sub.Done():
	default:
		t.Fatal("session close must tear the subscription down")
	}
	if err := sub.Err(); err != nil {
		t.Fatalf("session-close teardown must be clean, got %v", err)
	}
	assertGoroutinesSettle(t, base)

	// Ingest after close fails cleanly.
	if _, err := sub.Ingest(ctx, "graph", []Delta{Insert(NewTuple(int64(0), int64(1)))}); err == nil {
		t.Fatal("ingest after close must error")
	}
}
