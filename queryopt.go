package rex

// Per-query priority levels for the rexd admission scheduler. Normal is
// the zero value, so queries that never mention priority schedule as
// they always did.
const (
	PriorityLow    = -1
	PriorityNormal = 0
	PriorityHigh   = 1
)

// QueryOption tunes one query execution, stream, or subscription. The
// variadic form is the canonical way to pass per-query knobs:
//
//	res, err := s.QueryCtx(ctx, src, rex.WithTenant("acme"), rex.WithPriority(rex.PriorityHigh))
//
// Options compose left to right; WithOptions bridges from the legacy
// Options struct. Prepare accepts the same set as statement defaults.
type QueryOption func(*Options)

// WithPriority sets the query's scheduling priority (PriorityLow,
// PriorityNormal, PriorityHigh). On a server session the rexd scheduler
// drains higher priorities first within each tenant's lane; on direct
// sessions the engine executes immediately and the value is inert.
func WithPriority(p int) QueryOption {
	return func(o *Options) { o.Priority = p }
}

// WithTenant tags the query with a tenant id for the rexd server's
// per-tenant admission quotas and fair scheduling. It overrides the
// session-level default (see the WithServerTenant Open option); quota
// exhaustion surfaces as ErrTenantBusy.
func WithTenant(id string) QueryOption {
	return func(o *Options) { o.Tenant = id }
}

// WithNoVectorize disables the columnar batch path for this query:
// operators exchange row-form delta slices and the shuffle ships
// dictionary frames only.
func WithNoVectorize() QueryOption {
	return func(o *Options) { o.NoVectorize = true }
}

// WithBatchSize sets the transport batching granularity (default 1024).
func WithBatchSize(n int) QueryOption {
	return func(o *Options) { o.BatchSize = n }
}

// WithMaxStrata caps the query's recursion depth.
func WithMaxStrata(n int) QueryOption {
	return func(o *Options) { o.MaxStrata = n }
}

// WithCompaction enables delta-batch compaction in the shuffle path;
// the optional high-water mark tunes flush deferral (0 = default).
func WithCompaction(highWater int) QueryOption {
	return func(o *Options) { o.Compaction = true; o.CompactionHighWater = highWater }
}

// WithCheckpoint enables per-stratum Δᵢ replication (required for
// incremental recovery).
func WithCheckpoint() QueryOption {
	return func(o *Options) { o.Checkpoint = true }
}

// WithRecovery selects the failure-handling strategy for direct
// sessions (server sessions reject it — the server owns recovery).
func WithRecovery(strategy RecoveryStrategy) QueryOption {
	return func(o *Options) { o.Recovery = strategy }
}

// WithOptions overlays a full Options struct — the bridge for callers
// holding pre-built option state (the deprecated struct-taking entry
// points are thin wrappers over it). Fields set by earlier QueryOptions
// are replaced wholesale.
func WithOptions(opts Options) QueryOption {
	return func(o *Options) { *o = opts }
}

// buildOptions folds a QueryOption list into an Options value.
func buildOptions(qopts []QueryOption) Options {
	var o Options
	for _, q := range qopts {
		if q != nil {
			q(&o)
		}
	}
	return o
}
