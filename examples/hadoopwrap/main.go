// Hadoop wrap: runs compiled MapReduce code (a word-count job) unchanged
// inside REX through the MapWrap/ReduceWrap table-valued wrappers of §4.4.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/mapred"
	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/wrap"
)

func main() {
	ctx := context.Background()
	c, err := rex.Open(ctx, rex.WithInProc(3))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable("docs", rex.Schema("k:Integer", "v:String"), 0); err != nil {
		log.Fatal(err)
	}

	words := []string{"delta", "rex", "delta", "fixpoint", "rex", "delta"}
	var rows []rex.Tuple
	for i, w := range words {
		rows = append(rows, rex.NewTuple(int64(i), w))
	}
	if err := c.Load("docs", rows); err != nil {
		log.Fatal(err)
	}

	// A Hadoop word-count job, written against the mapred API exactly as
	// it would be for the Hadoop runtime.
	mapper := mapred.MapperFunc(func(k, v types.Value, emit func(k, v types.Value)) error {
		emit(v, int64(1))
		return nil
	})
	reducer := mapred.ReducerFunc(func(k types.Value, vs []types.Value, emit func(k, v types.Value)) error {
		total := int64(0)
		for _, v := range vs {
			n, _ := types.AsInt(v)
			total += n
		}
		emit(k, total)
		return nil
	})

	// Wrap it and run it as a REX dataflow: scan → MapWrap → rehash →
	// ReduceWrap (the single-job template of §4.4).
	if err := wrap.RegisterMapWrap(c.Catalog(), "wc_map", mapper); err != nil {
		log.Fatal(err)
	}
	if err := wrap.RegisterReduceWrap(c.Catalog(), "wc_red", reducer); err != nil {
		log.Fatal(err)
	}
	p := exec.NewPlanSpec()
	scan := p.Add(&exec.OpSpec{Kind: exec.OpScan, Table: "docs"})
	mw := p.Add(&exec.OpSpec{Kind: exec.OpTVF, Inputs: []int{scan.ID}, TVFName: "wc_map"})
	rh := p.Add(&exec.OpSpec{Kind: exec.OpRehash, Inputs: []int{mw.ID}, HashKey: []int{0}})
	rw := p.Add(&exec.OpSpec{Kind: exec.OpGroupBy, Inputs: []int{rh.ID}, GroupKey: []int{0}, UDAName: "wc_red"})
	p.RootID = rw.ID

	res, err := c.RunPlan(ctx, p, rex.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("word counts via Hadoop code inside REX:")
	for _, t := range res.Tuples {
		fmt.Printf("  %v: %v\n", t[0], t[1])
	}
}
