// Quickstart: boot a simulated REX cluster, load a table, and run ad hoc
// RQL aggregations — the DBMS-style usage of §1 (small, quickly executed
// ad hoc queries on the same platform that runs iterative jobs).
package main

import (
	"fmt"
	"log"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/datagen"
)

func main() {
	c := rex.NewCluster(rex.ClusterConfig{Nodes: 4})

	// A TPC-H-style lineitem table, hash-partitioned by order key.
	c.MustCreateTable("lineitem", rex.Schema(datagen.LineItemSchema...), 0)
	c.MustLoad("lineitem", datagen.LineItems(50_000, 1))

	// The Fig. 4 query: filter + global aggregation.
	res, err := c.Query(`SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum(tax)=%v count=%v in %v\n", res.Tuples[0][0], res.Tuples[0][1], res.Duration)

	// Grouped aggregation with an average.
	res, err = c.Query(`SELECT returnflag, avg(quantity), count(*) FROM lineitem GROUP BY returnflag`)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range res.Tuples {
		fmt.Printf("flag=%v avg(quantity)=%.2f count=%v\n", t[0], t[1], t[2])
	}
	fmt.Printf("shipped %d bytes across the simulated cluster\n", c.BytesShipped())
}
