// Quickstart: open a REX session, run ad hoc RQL aggregations — the
// DBMS-style usage of §1 — then demo the three pillars of the session
// API: context-aware queries, prepared statements, and streaming results.
//
//	go run ./examples/quickstart                    # in-process workers
//	go run ./examples/quickstart -transport tcp     # spawns rexnode child processes
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/rex-data/rex"
)

func main() {
	transport := flag.String("transport", "inproc", "inproc | tcp")
	nodes := flag.Int("nodes", 4, "worker count")
	nodeMode := flag.Bool("node", false, "run as a worker daemon (internal, used by -transport tcp)")
	listen := flag.String("listen", "127.0.0.1:0", "daemon listen address (with -node)")
	flag.Parse()

	// With -transport tcp the session spawns this binary once per worker
	// with -node; ServeNode turns those children into rexnode daemons.
	if *nodeMode {
		if err := rex.ServeNode(*listen, os.Stderr); err != nil {
			log.Fatal(err)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// One Open call selects the deployment; everything after is
	// transport-agnostic. The staged dataset is a TPC-H-style lineitem
	// table generated deterministically from (size, seed) — on TCP each
	// worker process regenerates its own partition, so no tuples ship.
	opts := []rex.Option{rex.WithDataset("lineitem", 50_000, 1)}
	switch *transport {
	case "inproc":
		opts = append(opts, rex.WithInProc(*nodes))
	case "tcp":
		fmt.Printf("spawning %d rexnode worker processes\n", *nodes)
		opts = append(opts, rex.WithAutoSpawn(*nodes))
	default:
		log.Fatalf("unknown transport %q", *transport)
	}
	s, err := rex.Open(ctx, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// The Fig. 4 query: filter + global aggregation, under a context.
	res, err := s.QueryCtx(ctx, `SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > 1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum(tax)=%v count=%v in %v\n", res.Tuples[0][0], res.Tuples[0][1], res.Duration)

	// Prepared statement: parse/bind/plan once, execute per request with
	// $1 bound at run time.
	stmt, err := s.Prepare(`SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > $1`)
	if err != nil {
		log.Fatal(err)
	}
	for _, min := range []int64{2, 4, 6} {
		res, err := stmt.QueryCtx(ctx, rex.Options{}, min)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("linenumber>%d: sum(tax)=%v count=%v\n", min, res.Tuples[0][0], res.Tuples[0][1])
	}

	// Streaming: result batches arrive as punctuation closes them instead
	// of buffering the full result set in the requestor.
	st, err := s.Stream(ctx, `SELECT returnflag, count(*) FROM lineitem GROUP BY returnflag`)
	if err != nil {
		log.Fatal(err)
	}
	groups := 0
	for _, deltas := range st.Seq() {
		groups += len(deltas)
	}
	if err := st.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d groups; shipped %d bytes across the cluster\n", groups, s.BytesShipped())
}
