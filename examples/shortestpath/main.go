// Shortest path with failure recovery: runs the Listing 2 computation with
// incremental Δi checkpointing enabled, kills a worker mid-query, and shows
// the computation resuming from the last completed stratum (§4.3).
package main

import (
	"fmt"
	"log"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/datagen"
)

func main() {
	c := rex.NewCluster(rex.ClusterConfig{Nodes: 4, Replication: 3})
	c.MustCreateTable("graph", rex.Schema("srcId:Integer", "destId:Integer"), 0)
	c.MustCreateTable("spseed", rex.Schema("srcId:Integer", "dist:Double"), 0)

	g := datagen.DBPediaGraph(3000, 7)
	c.MustLoad("graph", g.Edges)

	cfg := algos.SSSPConfig{Source: 0, Delta: true, MaxIterations: 500}
	c.MustLoad("spseed", algos.SSSPSeed(cfg))
	joinH, whileH, err := algos.RegisterSSSP(c.Catalog(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	plan := algos.SSSPPlan(cfg, joinH, whileH)

	// Kill worker 1 after stratum 3 completes; incremental recovery
	// restores the Δ checkpoints on the surviving replicas and resumes.
	killed := false
	opts := rex.Options{
		Recovery:   rex.RecoveryIncremental,
		Checkpoint: true,
		OnStratum: func(stratum, newTuples int) {
			if stratum == 3 && !killed {
				killed = true
				fmt.Println(">>> killing worker 1 at stratum 3")
				c.Kill(1)
			}
		},
	}
	res, err := c.RunPlan(plan, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reached %d vertices in %v (%d recovery)\n", len(res.Tuples), res.Duration, res.Recoveries)
	for _, s := range res.Strata {
		fmt.Printf("  stratum %2d: frontier = %6d\n", s.Stratum, s.NewTuples)
	}
}
