// Shortest path with failure recovery: runs the Listing 2 computation with
// incremental Δi checkpointing enabled, kills a worker mid-query, and shows
// the computation resuming from the last completed stratum (§4.3).
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/datagen"
)

func main() {
	ctx := context.Background()
	s, err := rex.Open(ctx, rex.WithInProc(4), rex.WithReplication(3))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	if err := s.CreateTable("graph", rex.Schema("srcId:Integer", "destId:Integer"), 0); err != nil {
		log.Fatal(err)
	}
	if err := s.CreateTable("spseed", rex.Schema("srcId:Integer", "dist:Double"), 0); err != nil {
		log.Fatal(err)
	}

	g := datagen.DBPediaGraph(3000, 7)
	if err := s.Load("graph", g.Edges); err != nil {
		log.Fatal(err)
	}

	cfg := algos.SSSPConfig{Source: 0, Delta: true, MaxIterations: 500}
	if err := s.Load("spseed", algos.SSSPSeed(cfg)); err != nil {
		log.Fatal(err)
	}
	joinH, whileH, err := algos.RegisterSSSP(s.Catalog(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	plan := algos.SSSPPlan(cfg, joinH, whileH)

	// Kill worker 1 after stratum 3 completes; incremental recovery
	// restores the Δ checkpoints on the surviving replicas and resumes.
	killed := false
	opts := rex.Options{
		Recovery:   rex.RecoveryIncremental,
		Checkpoint: true,
		OnStratum: func(stratum, newTuples int) {
			if stratum == 3 && !killed {
				killed = true
				fmt.Println(">>> killing worker 1 at stratum 3")
				if err := s.Kill(1); err != nil {
					log.Fatal(err)
				}
			}
		},
	}
	res, err := s.RunPlan(ctx, plan, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reached %d vertices in %v (%d recovery)\n", len(res.Tuples), res.Duration, res.Recoveries)
	for _, st := range res.Strata {
		fmt.Printf("  stratum %2d: frontier = %6d\n", st.Stratum, st.NewTuples)
	}
}
