// PageRank: the paper's flagship delta-based recursive computation
// (Listing 1). Each iteration propagates only the PageRank *diffs* above
// the convergence threshold; the streaming API lets you watch the Δi
// batches shrink stratum by stratum while the fixpoint converges.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/types"
)

func main() {
	ctx := context.Background()
	s, err := rex.Open(ctx, rex.WithInProc(4))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	if err := s.CreateTable("graph", rex.Schema("srcId:Integer", "destId:Integer"), 0); err != nil {
		log.Fatal(err)
	}

	g := datagen.DBPediaGraph(3000, 1)
	if err := s.Load("graph", g.Edges); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices, len(g.Edges))

	// Register the PRAgg join handler and the refinement while-handler,
	// then run Listing 1 through the RQL front end.
	cfg := algos.PageRankConfig{Epsilon: 0.001, Delta: true}
	joinH, whileH, err := algos.RegisterPageRank(s.Catalog(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	query := `
WITH PR (srcId, pr) AS (
  SELECT srcId, 1.0 AS pr FROM graph
) UNION UNTIL FIXPOINT BY srcId USING ` + whileH + ` (
  SELECT nbr, 0.15 + 0.85 * sum(prDiff)
  FROM (SELECT ` + joinH + `(srcId, pr).{nbr, prDiff}
        FROM graph, PR WHERE graph.srcId = PR.srcId GROUP BY srcId)
  GROUP BY nbr)`

	// Stream the fixpoint: every stratum's state-change batch arrives as
	// its punctuation closes, and folding the batches yields the final
	// ranks — no full-result buffering in the requestor.
	st, err := s.Stream(ctx, query, rex.WithMaxStrata(100))
	if err != nil {
		log.Fatal(err)
	}
	ranks := map[int64]float64{}
	for stratum, deltas := range st.Seq() {
		for _, d := range deltas {
			v, _ := types.AsInt(d.Tup[0])
			pr, _ := types.AsFloat(d.Tup[1])
			ranks[v] = pr
		}
		fmt.Printf("  stratum %2d: Δ set = %6d tuples\n", stratum, len(deltas))
	}
	if err := st.Err(); err != nil {
		log.Fatal(err)
	}
	res := st.Result()
	fmt.Printf("\nconverged in %d strata, %v total\n", len(res.Strata), res.Duration)

	type ranked struct {
		v  int64
		pr float64
	}
	var top []ranked
	for v, pr := range ranks {
		top = append(top, ranked{v, pr})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].pr > top[j].pr })
	fmt.Println("top-ranked vertices:")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  #%d: vertex %d  pr=%.4f\n", i+1, top[i].v, top[i].pr)
	}
}
