// PageRank: the paper's flagship delta-based recursive computation
// (Listing 1). Each iteration propagates only the PageRank *diffs* above
// the convergence threshold; watch the Δi sets shrink per stratum.
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/datagen"
	"github.com/rex-data/rex/internal/types"
)

func main() {
	c := rex.NewCluster(rex.ClusterConfig{Nodes: 4})
	c.MustCreateTable("graph", rex.Schema("srcId:Integer", "destId:Integer"), 0)

	g := datagen.DBPediaGraph(3000, 1)
	c.MustLoad("graph", g.Edges)
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices, len(g.Edges))

	// Register the PRAgg join handler and the refinement while-handler,
	// then run Listing 1 through the RQL front end.
	cfg := algos.PageRankConfig{Epsilon: 0.001, Delta: true}
	joinH, whileH, err := algos.RegisterPageRank(c.Catalog(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	query := `
WITH PR (srcId, pr) AS (
  SELECT srcId, 1.0 AS pr FROM graph
) UNION UNTIL FIXPOINT BY srcId USING ` + whileH + ` (
  SELECT nbr, 0.15 + 0.85 * sum(prDiff)
  FROM (SELECT ` + joinH + `(srcId, pr).{nbr, prDiff}
        FROM graph, PR WHERE graph.srcId = PR.srcId GROUP BY srcId)
  GROUP BY nbr)`

	res, err := c.QueryWithOptions(query, rex.Options{MaxStrata: 100})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nconverged in %d strata, %v total\n", len(res.Strata), res.Duration)
	for _, s := range res.Strata {
		fmt.Printf("  stratum %2d: Δ set = %6d tuples\n", s.Stratum, s.NewTuples)
	}

	sort.Slice(res.Tuples, func(i, j int) bool {
		a, _ := types.AsFloat(res.Tuples[i][1])
		b, _ := types.AsFloat(res.Tuples[j][1])
		return a > b
	})
	fmt.Println("\ntop-ranked vertices:")
	for i := 0; i < 5 && i < len(res.Tuples); i++ {
		fmt.Printf("  #%d: vertex %v  pr=%.4f\n", i+1, res.Tuples[i][0], res.Tuples[i][1])
	}
}
