// K-means clustering: the paper's mutable-only workload (Listing 3). The
// Δi set is the points that switched centroids; only coordinate/count
// adjustments cross the network each iteration.
package main

import (
	"fmt"
	"log"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/datagen"
)

func main() {
	c := rex.NewCluster(rex.ClusterConfig{Nodes: 4})
	c.MustCreateTable("points", rex.Schema("id:Integer", "x:Double", "y:Double"), 0)
	c.MustCreateTable("kmseed", rex.Schema("cid:Integer", "x:Double", "y:Double"), 0)

	points := datagen.GeoPoints(5000, 6, 1, 21)
	c.MustLoad("points", points)
	c.MustLoad("kmseed", algos.KMeansSeed(points, 6))

	cfg := algos.KMeansConfig{K: 6, MaxIterations: 100}
	joinH, whileH, err := algos.RegisterKMeans(c.Catalog(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.RunPlan(algos.KMeansPlan(cfg, joinH, whileH), rex.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d iterations (%v)\n", len(res.Strata), res.Duration)
	for _, s := range res.Strata {
		fmt.Printf("  stratum %2d: centroid deltas = %d\n", s.Stratum, s.NewTuples)
	}
	fmt.Println("final centroids:")
	for _, t := range res.Tuples {
		fmt.Printf("  cluster %v: (%.3f, %.3f)\n", t[0], t[1], t[2])
	}
}
