// K-means clustering: the paper's mutable-only workload (Listing 3). The
// Δi set is the points that switched centroids; only coordinate/count
// adjustments cross the network each iteration.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/rex-data/rex"
	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/datagen"
)

func main() {
	ctx := context.Background()
	s, err := rex.Open(ctx, rex.WithInProc(4))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	if err := s.CreateTable("points", rex.Schema("id:Integer", "x:Double", "y:Double"), 0); err != nil {
		log.Fatal(err)
	}
	if err := s.CreateTable("kmseed", rex.Schema("cid:Integer", "x:Double", "y:Double"), 0); err != nil {
		log.Fatal(err)
	}

	points := datagen.GeoPoints(5000, 6, 1, 21)
	if err := s.Load("points", points); err != nil {
		log.Fatal(err)
	}
	if err := s.Load("kmseed", algos.KMeansSeed(points, 6)); err != nil {
		log.Fatal(err)
	}

	cfg := algos.KMeansConfig{K: 6, MaxIterations: 100}
	joinH, whileH, err := algos.RegisterKMeans(s.Catalog(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.RunPlan(ctx, algos.KMeansPlan(cfg, joinH, whileH), rex.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d iterations (%v)\n", len(res.Strata), res.Duration)
	for _, st := range res.Strata {
		fmt.Printf("  stratum %2d: centroid deltas = %d\n", st.Stratum, st.NewTuples)
	}
	fmt.Println("final centroids:")
	for _, t := range res.Tuples {
		fmt.Printf("  cluster %v: (%.3f, %.3f)\n", t[0], t[1], t[2])
	}
}
