package rex

import (
	"context"
	"errors"
	"io"
	"runtime"
	"testing"
	"time"

	"github.com/rex-data/rex/internal/bench"
	"github.com/rex-data/rex/internal/noded"
	"github.com/rex-data/rex/internal/types"
)

// startDaemons boots n rexnode worker daemons on loopback sockets inside
// the test process and returns their addresses.
func startDaemons(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	served := make(chan struct{}, n)
	nodes := make([]*noded.Node, n)
	for i := 0; i < n; i++ {
		nd, err := noded.Listen("127.0.0.1:0", io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		addrs[i] = nd.Addr()
		go func() {
			defer func() { served <- struct{}{} }()
			if err := nd.Serve(); err != nil {
				t.Errorf("daemon: %v", err)
			}
		}()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
		for i := 0; i < n; i++ {
			select {
			case <-served:
			case <-time.After(10 * time.Second):
				t.Error("daemon did not shut down")
				return
			}
		}
	})
	return addrs
}

// equivWorkloads is the public-API copy of the transport-equivalence
// suite: identical specs must hash identically on every transport.
func equivWorkloads(nodes int, seed int64) []*Workload {
	return []*Workload{
		{Workload: "sssp", Nodes: nodes, Seed: seed, Size: 300, Source: 0,
			Delta: true, MaxIterations: 300, Compaction: true, BatchSize: 1 << 20},
		{Workload: "pagerank", Nodes: nodes, Seed: seed, Size: 250, Epsilon: 0.001,
			Delta: true, MaxIterations: 60, Compaction: true, BatchSize: 1 << 20},
		{Workload: "kmeans", Nodes: nodes, Seed: seed, Size: 120, K: 4,
			MaxIterations: 100, Compaction: true, BatchSize: 1 << 20},
	}
}

// TestOpenTCPEquivalence is the acceptance check of the session redesign:
// rex.Open with WithTCPPeers runs the transport-equivalence suite through
// the public API with result hashes identical to an in-process session.
func TestOpenTCPEquivalence(t *testing.T) {
	const nodes = 3
	ctx := context.Background()
	tcp, err := Open(ctx, WithTCPPeers(startDaemons(t, nodes)...))
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	inproc, err := Open(ctx, WithInProc(nodes))
	if err != nil {
		t.Fatal(err)
	}
	defer inproc.Close()

	for _, w := range equivWorkloads(nodes, 7) {
		want, err := inproc.RunWorkload(ctx, w, nil)
		if err != nil {
			t.Fatalf("inproc %s: %v", w.Workload, err)
		}
		got, err := tcp.RunWorkload(ctx, w, nil)
		if err != nil {
			t.Fatalf("tcp %s: %v", w.Workload, err)
		}
		if gh, wh := bench.ResultHash(got.Tuples), bench.ResultHash(want.Tuples); gh != wh {
			t.Errorf("%s: result hash tcp=%s inproc=%s", w.Workload, gh, wh)
		}
		if got.BytesSent <= 0 {
			t.Errorf("%s: tcp run must report measured socket bytes", w.Workload)
		}
	}
}

// cancelWorkload is a recursive computation long enough to cancel
// mid-fixpoint: PageRank with a tight epsilon runs tens of strata.
func cancelWorkload(nodes int) *Workload {
	return &Workload{Workload: "pagerank", Nodes: nodes, Seed: 3, Size: 400,
		Epsilon: 1e-9, Delta: true, MaxIterations: 200}
}

// testCancelMidFixpoint cancels a long recursive query at stratum 2 and
// proves the session stays usable: the follow-up run of the same workload
// returns the undisturbed reference result.
func testCancelMidFixpoint(t *testing.T, sess *Session, nodes int) {
	t.Helper()
	ctx := context.Background()
	w := cancelWorkload(nodes)
	want, err := sess.RunWorkload(ctx, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Strata) < 10 {
		t.Fatalf("workload too short to cancel mid-fixpoint: %d strata", len(want.Strata))
	}
	wantHash := bench.ResultHash(want.Tuples)

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	res, err := sess.RunWorkload(cctx, w, func(o *Options) {
		o.OnStratum = func(s, newTuples int) {
			if s == 2 {
				cancel()
			}
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err=%v res=%v, want context.Canceled", err, res)
	}

	// The session must be immediately usable for the next query.
	again, err := sess.RunWorkload(ctx, w, nil)
	if err != nil {
		t.Fatalf("follow-up run after cancel: %v", err)
	}
	if got := bench.ResultHash(again.Tuples); got != wantHash {
		t.Errorf("follow-up run hash %s, want %s", got, wantHash)
	}
}

func TestCancelMidFixpointInProc(t *testing.T) {
	base := runtime.NumGoroutine()
	sess, err := Open(context.Background(), WithInProc(3))
	if err != nil {
		t.Fatal(err)
	}
	testCancelMidFixpoint(t, sess, 3)
	sess.Close()
	assertGoroutinesSettle(t, base)
}

func TestCancelMidFixpointTCP(t *testing.T) {
	base := runtime.NumGoroutine()
	addrs := startDaemons(t, 3)
	sess, err := Open(context.Background(), WithTCPPeers(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	testCancelMidFixpoint(t, sess, 3)
	sess.Close()
	// The in-test daemons are torn down in cleanup; only the session's
	// own goroutines must be gone by now, plus the daemons' serve loops
	// (3 serve + their read loops) still running until cleanup.
	_ = base
}

// assertGoroutinesSettle waits for the goroutine count to return to (or
// below) the pre-test baseline, modulo a small slack for runtime helpers.
func assertGoroutinesSettle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
		runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
}

// TestCancelledQueryCtxInProc cancels through the RQL front door (Query
// path, session engine) and checks the session engine — not a fresh
// workload engine — answers correctly afterwards.
func TestCancelledQueryCtxInProc(t *testing.T) {
	base := runtime.NumGoroutine()
	sess, err := Open(context.Background(), WithInProc(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.CreateTable("items", Schema("k:Integer", "v:Double"), 0); err != nil {
		t.Fatal(err)
	}
	var rows []Tuple
	for i := 0; i < 500; i++ {
		rows = append(rows, NewTuple(int64(i), float64(i)))
	}
	if err := sess.Load("items", rows); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the query must fail fast with ctx.Err()
	if _, err := sess.QueryCtx(ctx, `SELECT sum(v) FROM items`); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	res, err := sess.QueryCtx(context.Background(), `SELECT sum(v), count(*) FROM items`)
	if err != nil {
		t.Fatalf("follow-up query: %v", err)
	}
	n, _ := types.AsInt(res.Tuples[0][1])
	if n != 500 {
		t.Fatalf("count = %d, want 500", n)
	}
	sess.Close()
	assertGoroutinesSettle(t, base)
}

// TestSessionKillErrors covers the error-returning Kill/Revive paths.
func TestSessionKillErrors(t *testing.T) {
	sess, err := Open(context.Background(), WithInProc(2))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Kill(99); err == nil {
		t.Fatal("Kill(99) must error")
	}
	if err := sess.Revive(-1); err == nil {
		t.Fatal("Revive(-1) must error")
	}
	if err := sess.Kill(1); err != nil {
		t.Fatalf("Kill(1): %v", err)
	}
	if err := sess.Revive(1); err != nil {
		t.Fatalf("Revive(1): %v", err)
	}
}

// TestDeadNodeByteAccounting kills a daemon mid-run over TCP and checks
// the victim's measured socket bytes survive in the session totals (the
// daemon pushes a final stats frame on MsgKill).
func TestDeadNodeByteAccounting(t *testing.T) {
	const nodes = 3
	ctx := context.Background()
	sess, err := Open(ctx, WithTCPPeers(startDaemons(t, nodes)...))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	w := &Workload{Workload: "sssp", Nodes: nodes, Seed: 3, Size: 250, Source: 0,
		Delta: true, MaxIterations: 300, Checkpoint: true}
	res, err := sess.RunWorkload(ctx, w, func(o *Options) {
		o.Recovery = RecoveryRestart
		o.OnStratum = func(s, newTuples int) {
			if s == 2 {
				if err := sess.Kill(1); err != nil {
					t.Errorf("kill: %v", err)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", res.Recoveries)
	}
	// The victim sent shuffle traffic in strata 0–2; its counter must be
	// present in the driver's metrics even though it was dead at the
	// end-of-run sync.
	victim := sess.transport().Metrics().BytesSent[1].Load()
	if victim <= 0 {
		t.Fatalf("dead node's BytesSent = %d, want > 0 (final stats frame lost?)", victim)
	}
}

// TestPreparedStatements exercises Prepare/exec on both transports against
// the equivalent direct query.
func TestPreparedStatements(t *testing.T) {
	ctx := context.Background()
	const q = `SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > $1`

	check := func(t *testing.T, sess *Session) {
		t.Helper()
		stmt, err := sess.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		if stmt.NumParams() != 1 {
			t.Fatalf("NumParams = %d, want 1", stmt.NumParams())
		}
		for _, min := range []int64{1, 3, 5} {
			got, err := stmt.QueryCtx(ctx, Options{}, min)
			if err != nil {
				t.Fatalf("exec $1=%d: %v", min, err)
			}
			want, err := sess.QueryCtx(ctx,
				`SELECT sum(tax), count(*) FROM lineitem WHERE linenumber > `+
					types.AsString(min))
			if err != nil {
				t.Fatal(err)
			}
			if bench.ResultHash(got.Tuples) != bench.ResultHash(want.Tuples) {
				t.Errorf("$1=%d: prepared %v, direct %v", min, got.Tuples, want.Tuples)
			}
		}
		// Arity and kind errors.
		if _, err := stmt.QueryCtx(ctx, Options{}); err == nil {
			t.Error("missing parameter must error")
		}
		if _, err := stmt.QueryCtx(ctx, Options{}, "nope"); err == nil {
			t.Error("string for integer parameter must error")
		}
	}

	t.Run("inproc", func(t *testing.T) {
		sess, err := Open(ctx, WithInProc(2), WithDataset("lineitem", 2000, 4))
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		check(t, sess)
	})
	t.Run("tcp", func(t *testing.T) {
		sess, err := Open(ctx, WithTCPPeers(startDaemons(t, 2)...), WithDataset("lineitem", 2000, 4))
		if err != nil {
			t.Fatal(err)
		}
		defer sess.Close()
		check(t, sess)
	})
}

// openChainSession opens a 2-node in-process session staged with a
// 64-vertex chain graph and the handlers for a recursive shortest-path
// query that runs ~64 strata — long enough that a streaming producer
// outpaces a stalled consumer and fills the batch channel.
func openChainSession(t *testing.T) (*Session, string) {
	t.Helper()
	sess, err := Open(context.Background(), WithInProc(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	if err := sess.CreateTable("graph", Schema("srcId:Integer", "destId:Integer"), 0); err != nil {
		t.Fatal(err)
	}
	var edges []Tuple
	for i := int64(0); i < 63; i++ {
		edges = append(edges, NewTuple(i, i+1))
	}
	if err := sess.Load("graph", edges); err != nil {
		t.Fatal(err)
	}
	if err := sess.WhileHandler("keepmin", func(rel *TupleSet, d Delta) ([]Delta, error) {
		nd, _ := types.AsFloat(d.Tup[1])
		if rel.Len() > 0 {
			cur, _ := types.AsFloat(rel.Tuples[0][1])
			if nd >= cur {
				return nil, nil
			}
			rel.ReplaceFirst(rel.Tuples[0], NewTuple(d.Tup[0], nd))
		} else {
			rel.Add(NewTuple(d.Tup[0], nd))
		}
		return []Delta{Update(NewTuple(d.Tup[0], nd))}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := sess.JoinHandler("hops", Schema("nbr:Integer", "d:Double"),
		func(left, right *TupleSet, d Delta, fromLeft bool) ([]Delta, error) {
			if fromLeft {
				left.Add(d.Tup)
				return nil, nil
			}
			dist, _ := types.AsFloat(d.Tup[1])
			var out []Delta
			for _, e := range left.Tuples {
				out = append(out, Update(NewTuple(e[1], dist+1)))
			}
			return out, nil
		}); err != nil {
		t.Fatal(err)
	}
	if err := sess.CreateTable("seed", Schema("srcId:Integer", "dist:Double"), 0); err != nil {
		t.Fatal(err)
	}
	if err := sess.Load("seed", []Tuple{NewTuple(int64(0), 0.0)}); err != nil {
		t.Fatal(err)
	}
	const q = `
WITH SP (srcId, dist) AS (
  SELECT srcId, dist FROM seed
) UNION ALL UNTIL FIXPOINT BY srcId USING keepmin (
  SELECT nbr, min(d)
  FROM (SELECT hops(srcId, dist).{nbr, d}
        FROM graph, SP WHERE graph.srcId = SP.srcId GROUP BY srcId)
  GROUP BY nbr)`
	return sess, q
}

// TestStreamPublicAPI checks Session.Stream yields per-stratum batches
// whose fold equals the buffered result, and that an abandoned stream
// (Close mid-consumption) leaves the session usable.
func TestStreamPublicAPI(t *testing.T) {
	ctx := context.Background()
	sess, q := openChainSession(t)

	want, err := sess.QueryCtx(ctx, q, WithMaxStrata(300))
	if err != nil {
		t.Fatal(err)
	}

	st, err := sess.Stream(ctx, q, WithMaxStrata(300))
	if err != nil {
		t.Fatal(err)
	}
	strata := map[int]bool{}
	var n int
	for stratum := range st.Seq() {
		strata[stratum] = true
		n++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	if len(strata) < 10 || n < 10 {
		t.Fatalf("expected many per-stratum batches, got %d batches over %d strata", n, len(strata))
	}

	// Fold equivalence via Drain on a fresh stream.
	st, err = sess.Stream(ctx, q, WithMaxStrata(300))
	if err != nil {
		t.Fatal(err)
	}
	folded, err := st.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if bench.ResultHash(folded.Tuples) != bench.ResultHash(want.Tuples) {
		t.Errorf("stream fold %d rows, buffered %d rows, hashes differ", len(folded.Tuples), len(want.Tuples))
	}

	// Abandon a stream mid-consumption; the session must still answer.
	st, err = sess.Stream(ctx, q, WithMaxStrata(300))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Next(); !ok {
		t.Fatal("expected at least one batch before Close")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	again, err := sess.QueryCtx(ctx, q, WithMaxStrata(300))
	if err != nil {
		t.Fatalf("query after abandoned stream: %v", err)
	}
	if bench.ResultHash(again.Tuples) != bench.ResultHash(want.Tuples) {
		t.Error("result drifted after abandoned stream")
	}
}

// TestCloseWithAbandonedStream: a stream abandoned mid-consumption without
// stream.Close() (the Seq docs allow breaking out of the loop) must not
// deadlock Session.Close — the producer is parked on the full batch
// channel holding the session lock, and Close has to cancel it.
func TestCloseWithAbandonedStream(t *testing.T) {
	sess, q := openChainSession(t)
	st, err := sess.Stream(context.Background(), q, WithMaxStrata(300))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Next(); !ok {
		t.Fatal("expected at least one batch")
	}
	// Abandon st: no further Next, no st.Close. The ~64-strata run
	// overfills the channel buffer, so the producer is now blocked.
	done := make(chan error, 1)
	go func() { done <- sess.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Session.Close deadlocked behind the abandoned stream")
	}
}
