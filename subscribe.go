package rex

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/rql"
	"github.com/rex-data/rex/internal/srvproto"
	"github.com/rex-data/rex/internal/types"
)

// RoundStats reports one round of a standing query (round 0 is the initial
// fixpoint; every round after it covers one or more coalesced ingestion
// requests — see RoundStats.Ingests and CoalescingRatio).
type RoundStats = exec.RoundStats

// IngestAck is the handle an asynchronous ingest returns: it resolves when
// the round covering the request — possibly coalesced with other queued
// requests into a single round — completes its fixpoint. Wait blocks for
// the covering round's stats; Done exposes the completion channel. On
// sessions without a live subscription the ack is already resolved when
// returned (the change applied synchronously; there is no round).
type IngestAck = exec.IngestAck

// Subscription is a standing query: Subscribe compiled the plan, ran the
// initial fixpoint, and kept the whole dataflow — worker loops, operator
// state, delta network — resident. Base-table changes fed through
// Session.Insert/Delete/LoadDeltas (or Ingest directly) run incremental
// rounds whose per-stratum output deltas are pushed to Stream; folding the
// stream in order always reproduces what a from-scratch Query over the
// revised base tables would return.
//
// On a server session the dataflow lives in the rexd server: the initial
// result arrives as round 0 and every covering ingestion round streams
// its net-change deltas over the connection, interleaved fairly with
// other clients' queries on the shared pool.
//
// A subscription owns the session while live: other queries on the session
// wait (or fail at Close) until the subscription is closed.
type Subscription struct {
	sess *Session
	sq   *exec.StandingQuery

	// server-session (remote) form: the round-tagged delta stream fed by
	// the connection's read loop, and the round stats its boundary frames
	// carried.
	st        *exec.ResultStream
	roundsMu  sync.Mutex
	rounds    []RoundStats
	ready     chan error
	readyOnce sync.Once
}

// Subscribe compiles src, executes its initial fixpoint, and returns the
// live subscription. Works on every transport: in-process the session
// engine's workers stay resident; over TCP every rexnode daemon keeps its
// job alive and ingestion rounds travel as MsgIngest wire frames; on a
// server session the rexd server keeps the standing state and streams
// each round back. Standing queries reject failure-recovery and
// checkpoint options.
func (s *Session) Subscribe(ctx context.Context, src string, qopts ...QueryOption) (*Subscription, error) {
	opts := buildOptions(qopts)
	if s.srv != nil {
		return s.subscribeServer(ctx, src, opts)
	}
	if s.jc != nil {
		spec, err := s.rqlSpec(src, opts)
		if err != nil {
			return nil, err
		}
		if err := s.lock(); err != nil {
			return nil, err
		}
		sq, err := s.jc.StandingCtx(ctx, spec, driverTune(opts))
		return s.adoptStanding(sq, err)
	}
	plan, err := rql.Compile(src, s.cat, s.cfg.nodes)
	if err != nil {
		return nil, err
	}
	if err := s.lock(); err != nil {
		return nil, err
	}
	sq, err := s.eng.Standing(ctx, plan, opts)
	return s.adoptStanding(sq, err)
}

// subscribeServer installs a standing query on the rexd server. The call
// returns once the server finished the initial round (its batches are
// buffered on Stream by then) — compile errors and unknown tables
// surface here, not on first read.
func (s *Session) subscribeServer(ctx context.Context, src string, opts Options) (*Subscription, error) {
	if err := serverUnsupported(opts); err != nil {
		return nil, err
	}
	req := srvproto.Request{Op: srvproto.OpSubscribe, Src: src, Opts: wireOpts(opts)}
	if err := s.lock(); err != nil {
		return nil, err
	}
	sub := &Subscription{sess: s, ready: make(chan error, 1)}
	st, err := s.srv.openStream(ctx, req, sub.addRound)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	sub.st = st
	go func() {
		<-st.Done()
		sub.signalReady(st.Err())
	}()
	select {
	case err := <-sub.ready:
		if err != nil {
			st.Close()
			s.mu.Unlock()
			return nil, err
		}
	case <-ctx.Done():
		st.Close() // cancels the request; the server tears the sub down
		s.mu.Unlock()
		return nil, ctx.Err()
	}
	// Initial round done: hand the session lock to the live subscription,
	// exactly like adoptStanding.
	s.streamMu.Lock()
	s.sub = sub
	s.streamMu.Unlock()
	go func() {
		<-st.Done()
		s.streamMu.Lock()
		if s.sub == sub {
			s.sub = nil
		}
		s.streamMu.Unlock()
		s.mu.Unlock()
	}()
	return sub, nil
}

// addRound records a remote round's statistics (the connection read loop
// calls it on round-boundary frames); the first round readies Subscribe.
func (sub *Subscription) addRound(rs RoundStats) {
	sub.roundsMu.Lock()
	sub.rounds = append(sub.rounds, rs)
	sub.roundsMu.Unlock()
	sub.signalReady(nil)
}

func (sub *Subscription) signalReady(err error) {
	sub.readyOnce.Do(func() { sub.ready <- err })
}

// adoptStanding hands the session lock to a live subscription (released at
// its teardown) and registers it so Session.Close can cancel it and
// Insert/Delete/LoadDeltas route through it. The standing query's applied
// hook keeps the session's own view of the base data consistent, once per
// coalesced round, with the FOLDED deltas the workers actually absorbed:
// TCP sessions log the net change for job replay (daemon stores die with
// the job), in-process sessions only bump the catalog's row estimates (the
// workers already revised the stores).
func (s *Session) adoptStanding(sq *exec.StandingQuery, err error) (*Subscription, error) {
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	sq.SetOnRoundApplied(func(tables map[string][]types.Delta) {
		names := make([]string, 0, len(tables))
		for t := range tables {
			names = append(names, t)
		}
		sort.Strings(names)
		for _, table := range names {
			if s.jc != nil {
				s.appendIngestLog(table, tables[table])
			} else {
				s.bumpStats(table, tables[table])
			}
		}
	})
	sub := &Subscription{sess: s, sq: sq}
	s.streamMu.Lock()
	s.sub = sub
	s.streamMu.Unlock()
	go func() {
		<-sq.Done()
		s.streamMu.Lock()
		if s.sub == sub {
			s.sub = nil
		}
		s.streamMu.Unlock()
		s.mu.Unlock()
	}()
	return sub, nil
}

// liveSub returns the session's active subscription, if any.
func (s *Session) liveSub() *Subscription {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	return s.sub
}

// Stream returns the subscription's delta stream: the initial fixpoint's
// per-stratum batches followed by every ingestion round's, each tagged
// with its round and round-relative stratum. The stream's buffer is
// unbounded, so one goroutine may alternate ingestion and consumption
// (TryNext drains exactly what a completed round buffered). The stream
// ends when the subscription closes.
func (sub *Subscription) Stream() *DeltaStream {
	if sub.sq != nil {
		return sub.sq.Stream()
	}
	return sub.st
}

// Rounds returns per-round statistics, the initial fixpoint included:
// strata run, deltas emitted, and — the serving metric — the round's
// measured wire bytes, to hold against a from-scratch recompute's.
func (sub *Subscription) Rounds() []RoundStats {
	if sub.sq != nil {
		return sub.sq.Rounds()
	}
	sub.roundsMu.Lock()
	defer sub.roundsMu.Unlock()
	return append([]RoundStats(nil), sub.rounds...)
}

// Ingest applies base-table deltas and runs (or joins) one incremental
// round, returning its stats once the fixpoint closes (all of the round's
// output batches are buffered on Stream by then).
// Session.Insert/Delete/LoadDeltas are the per-table conveniences over it;
// IngestAsync is the non-blocking form.
func (sub *Subscription) Ingest(ctx context.Context, table string, deltas []Delta) (*RoundStats, error) {
	if len(deltas) == 0 {
		return nil, fmt.Errorf("rex: ingest into %s: empty delta batch", table)
	}
	if sub.sq == nil {
		tr, err := sub.sess.srv.ingest(ctx, map[string][]types.Delta{table: deltas})
		if err != nil {
			return nil, err
		}
		return tr.Round, nil
	}
	return sub.sq.Ingest(ctx, map[string][]types.Delta{table: deltas})
}

// IngestAsync enqueues base-table deltas and returns immediately; the ack
// resolves when the covering round completes. Requests enqueued while a
// round is running coalesce — their deltas fold through the shuffle
// compactor into a single follow-up round — so a burst of small writes
// costs one fixpoint, not one per write. Safe for concurrent callers. On
// a server session the request travels synchronously and the returned ack
// is already resolved (coalescing happens server-side, across clients).
func (sub *Subscription) IngestAsync(table string, deltas []Delta) (*IngestAck, error) {
	if len(deltas) == 0 {
		return nil, fmt.Errorf("rex: ingest into %s: empty delta batch", table)
	}
	return sub.ingestAsync(map[string][]types.Delta{table: deltas})
}

// Ingests is the multi-table batched form of IngestAsync: every table's
// deltas ride the same covering round.
func (sub *Subscription) Ingests(batches map[string][]Delta) (*IngestAck, error) {
	m := make(map[string][]types.Delta, len(batches))
	for table, deltas := range batches {
		if len(deltas) > 0 {
			m[table] = deltas
		}
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("rex: ingest: empty delta batch")
	}
	return sub.ingestAsync(m)
}

func (sub *Subscription) ingestAsync(m map[string][]types.Delta) (*IngestAck, error) {
	if sub.sq == nil {
		tr, err := sub.sess.srv.ingest(context.Background(), m)
		if err != nil {
			return nil, err
		}
		return exec.ResolvedAck(tr.Round, nil), nil
	}
	return sub.sq.IngestAsync(m)
}

// Err reports the subscription's terminal error once it is closed; a
// deliberate Close reports nil.
func (sub *Subscription) Err() error {
	if sub.sq != nil {
		return sub.sq.Err()
	}
	return sub.st.Err()
}

// Done is closed when the subscription has fully torn down.
func (sub *Subscription) Done() <-chan struct{} {
	if sub.sq != nil {
		return sub.sq.Done()
	}
	return sub.st.Done()
}

// Close tears the standing dataflow down and releases the session for
// other queries. The stream ends after its buffered batches are consumed.
func (sub *Subscription) Close() error {
	if sub.sq != nil {
		return sub.sq.Close()
	}
	// Cancelling the request unsubscribes server-side; the server answers
	// with a clean final frame, which ends the stream. Detach (not Close)
	// keeps the already-streamed rounds readable for a post-close fold,
	// matching the in-process standing-query contract.
	return sub.st.Detach()
}
