package rex

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/bench"
	"github.com/rex-data/rex/internal/job"
	"github.com/rex-data/rex/internal/noded"
)

// startSpillDaemons is startDaemons with a data directory per node: each
// in-process daemon pages its stores to disk through a poolPages-page
// buffer pool, the way a rexnode process started with -data-dir would.
// The nodes are returned too, so tests can read their pool counters
// after the session closes.
func startSpillDaemons(t *testing.T, n, poolPages int) ([]string, []*noded.Node) {
	t.Helper()
	root := t.TempDir()
	addrs := make([]string, n)
	nodes := make([]*noded.Node, n)
	served := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		nd, err := noded.Listen("127.0.0.1:0", io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		if err := nd.UseDataDir(filepath.Join(root, fmt.Sprintf("node%d", i)), poolPages); err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		addrs[i] = nd.Addr()
		go func() {
			defer func() { served <- struct{}{} }()
			if err := nd.Serve(); err != nil {
				t.Errorf("daemon: %v", err)
			}
		}()
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
		for i := 0; i < n; i++ {
			<-served
		}
	})
	return addrs, nodes
}

// TestSpillLargerThanRAMBothTransports is the paging acceptance property:
// a recursive shortest-path query over a dataset far larger than the
// configured buffer pool completes with a result hash identical to the
// all-in-RAM path, on both transports — and the pool counters prove the
// run genuinely paged (evictions and spilled bytes, not a dataset that
// quietly fit in the pool).
func TestSpillLargerThanRAMBothTransports(t *testing.T) {
	// 8 pages = 64 KiB of pool per node; the sssp graph at this scale is
	// many times that before operator state even starts accumulating.
	const size, pool = 4000, 8
	ctx := context.Background()
	opts := Options{MaxStrata: 300}
	data := []Option{WithDataset("sssp", size, 1), WithHandlers("sssp-inc")}

	runHash := func(t *testing.T, sess *Session) string {
		t.Helper()
		res, err := sess.QueryCtx(ctx, algos.IncSSSPQuery, WithOptions(opts))
		if err != nil {
			t.Fatal(err)
		}
		return bench.ResultHash(res.Tuples)
	}

	// Reference: the all-in-RAM in-process run.
	ram, err := Open(ctx, append([]Option{WithInProc(3)}, data...)...)
	if err != nil {
		t.Fatal(err)
	}
	want := runHash(t, ram)
	if err := ram.Close(); err != nil {
		t.Fatal(err)
	}

	// In-process spill: identical query, stores paged through tiny pools.
	sp, err := Open(ctx, append([]Option{WithInProc(3),
		WithSpillDir(t.TempDir()), WithBufferPoolPages(pool)}, data...)...)
	if err != nil {
		t.Fatal(err)
	}
	if got := runHash(t, sp); got != want {
		t.Fatalf("in-process spill hash %s != all-in-RAM %s", got, want)
	}
	ps := sp.PoolStats()
	if ps.Evictions == 0 || ps.BytesSpilled == 0 {
		t.Fatalf("pool never paged (hits %d, misses %d, evictions %d, spilled %d bytes): the dataset must exceed the pool for this test to mean anything",
			ps.Hits, ps.Misses, ps.Evictions, ps.BytesSpilled)
	}
	t.Logf("in-process pool: %.1f%% hit rate, %d evictions, %d bytes spilled",
		100*ps.HitRate(), ps.Evictions, ps.BytesSpilled)
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	// TCP: daemons with data directories and the same tiny pools (the
	// spec's BufferPoolPages pins the budget cluster-wide).
	addrs, nodes := startSpillDaemons(t, 3, pool)
	tc, err := Open(ctx, append([]Option{WithTCPPeers(addrs...),
		WithBufferPoolPages(pool)}, data...)...)
	if err != nil {
		t.Fatal(err)
	}
	if got := runHash(t, tc); got != want {
		t.Fatalf("tcp spill hash %s != all-in-RAM %s", got, want)
	}
	if err := tc.Close(); err != nil {
		t.Fatal(err)
	}
	var total PoolStats
	for _, nd := range nodes {
		total.Add(nd.PoolStats())
	}
	if total.Evictions == 0 {
		t.Fatalf("daemon pools never paged (hits %d, misses %d): the dataset must exceed the pool",
			total.Hits, total.Misses)
	}
	t.Logf("daemon pools: %.1f%% hit rate, %d evictions, %d bytes spilled",
		100*total.HitRate(), total.Evictions, total.BytesSpilled)
}

// TestSpillPageRankEquivalence runs the second acceptance workload —
// PageRank, whose operator state (rank accumulators, not just edges)
// dominates the pool — through paged stores and gates hash equality with
// the in-memory run.
func TestSpillPageRankEquivalence(t *testing.T) {
	run := func(t *testing.T, spill bool) string {
		t.Helper()
		spec := &Workload{Workload: "pagerank", Nodes: 3, Seed: 1, Size: 2500,
			Delta: true, MaxIterations: 10}
		if spill {
			spec.SpillDir = t.TempDir()
			spec.BufferPoolPages = 8
		}
		eng, plan, opts, err := job.InProcEngine(spec)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Transport.Close()
		defer eng.CloseStores()
		res, err := eng.RunCtx(context.Background(), plan, opts)
		if err != nil {
			t.Fatal(err)
		}
		if spill {
			if ps := eng.PoolStats(); ps.Evictions == 0 {
				t.Fatalf("pagerank run never paged (hits %d, misses %d)", ps.Hits, ps.Misses)
			}
		}
		return bench.ResultHash(res.Tuples)
	}
	ram := run(t, false)
	if sp := run(t, true); sp != ram {
		t.Fatalf("pagerank spill hash %s != in-RAM %s", sp, ram)
	}
}
