module github.com/rex-data/rex

go 1.23
