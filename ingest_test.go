package rex

import (
	"context"
	"sync"
	"testing"

	"github.com/rex-data/rex/internal/algos"
	"github.com/rex-data/rex/internal/bench"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/types"
)

// churnEdges builds n deterministic insert-only graph edges out of the
// low-numbered (reached) core.
func churnEdges(n, size int) []Tuple {
	edges := make([]Tuple, n)
	for i := 0; i < n; i++ {
		edges[i] = NewTuple(int64(i%7), int64((7*i+13)%size))
	}
	return edges
}

// sequentialIngestSSSP subscribes and feeds every edge as its own awaited
// round, returning the folded-view hash and the round count.
func sequentialIngestSSSP(t *testing.T, edges []Tuple, opts ...Option) (string, int) {
	t.Helper()
	ctx := context.Background()
	sess, err := Open(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sub, err := sess.Subscribe(ctx, algos.IncSSSPQuery, WithMaxStrata(300))
	if err != nil {
		t.Fatal(err)
	}
	st := sub.Stream()
	view := &streamFold{}
	foldStream(t, st, sub.Rounds()[0].Batches, view)
	for _, e := range edges {
		if err := sess.Insert("graph", e); err != nil {
			t.Fatal(err)
		}
		rs := sub.Rounds()
		foldStream(t, st, rs[len(rs)-1].Batches, view)
	}
	rounds := len(sub.Rounds()) - 1
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	return bench.ResultHash(view.live), rounds
}

// coalescedIngestSSSP subscribes and fires the same edges as concurrent
// IngestAsync calls, waits for every ack, and folds the whole stream.
func coalescedIngestSSSP(t *testing.T, edges []Tuple, opts ...Option) (string, int) {
	t.Helper()
	ctx := context.Background()
	sess, err := Open(ctx, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sub, err := sess.Subscribe(ctx, algos.IncSSSPQuery, WithMaxStrata(300))
	if err != nil {
		t.Fatal(err)
	}
	st := sub.Stream()
	view := &streamFold{}
	foldStream(t, st, sub.Rounds()[0].Batches, view)

	const workers = 4
	var wg sync.WaitGroup
	ackCh := make(chan *IngestAck, len(edges))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(edges); i += workers {
				ack, err := sess.IngestAsync("graph", []Delta{Insert(edges[i])})
				if err != nil {
					t.Errorf("ingest %d: %v", i, err)
					return
				}
				ackCh <- ack
			}
		}(w)
	}
	wg.Wait()
	close(ackCh)
	covered := 0
	for ack := range ackCh {
		rs, err := ack.Wait(ctx)
		if err != nil {
			t.Fatalf("ack: %v", err)
		}
		if rs == nil || rs.Ingests <= 0 {
			t.Fatalf("ack resolved without a covering round: %+v", rs)
		}
		covered++
	}
	if covered != len(edges) {
		t.Fatalf("resolved %d acks, want %d", covered, len(edges))
	}
	rounds := sub.Rounds()
	for _, rs := range rounds[1:] {
		foldStream(t, st, rs.Batches, view)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	hash := bench.ResultHash(view.live)

	// The session's base-table view stays consistent through the applied
	// hook: a post-subscription query over the revised tables must agree
	// with the folded stream (store revision in-process, compacted
	// change-log replay over TCP).
	res, err := sess.QueryCtx(context.Background(), algos.IncSSSPQuery)
	if err != nil {
		t.Fatalf("query after coalesced subscription: %v", err)
	}
	if h := bench.ResultHash(res.Tuples); h != hash {
		t.Fatalf("folded coalesced stream %s != post-subscription query %s", hash, h)
	}
	return hash, len(rounds) - 1
}

// TestIngestAsyncCoalescingEquivalence is the coalescing acceptance
// property on both transports: a burst of concurrent IngestAsync calls
// must hash-match the same edges ingested one awaited round at a time, in
// (typically far) fewer rounds than ingests, with concurrent callers
// exercised under -race.
func TestIngestAsyncCoalescingEquivalence(t *testing.T) {
	const size = 300
	edges := churnEdges(40, size)
	ds := []Option{WithDataset("sssp", size, 1), WithHandlers("sssp-inc")}

	seqHash, seqRounds := sequentialIngestSSSP(t, edges, append([]Option{WithInProc(3)}, ds...)...)
	if seqRounds != len(edges) {
		t.Fatalf("sequential ingestion ran %d rounds, want %d", seqRounds, len(edges))
	}
	coHash, coRounds := coalescedIngestSSSP(t, edges, append([]Option{WithInProc(3)}, ds...)...)
	if coHash != seqHash {
		t.Fatalf("inproc coalesced %s != sequential %s", coHash, seqHash)
	}
	if coRounds > len(edges) {
		t.Fatalf("coalesced ingestion ran %d rounds for %d ingests", coRounds, len(edges))
	}

	addrs := startDaemons(t, 3)
	tcpHash, tcpRounds := coalescedIngestSSSP(t, edges, append([]Option{WithTCPPeers(addrs...)}, ds...)...)
	if tcpHash != seqHash {
		t.Fatalf("tcp coalesced %s != inproc sequential %s", tcpHash, seqHash)
	}
	if tcpRounds > len(edges) {
		t.Fatalf("tcp coalesced ingestion ran %d rounds for %d ingests", tcpRounds, len(edges))
	}
}

// TestIngestLogBoundedUnderChurn asserts the TCP session change log stays
// bounded by the NET change: insert+delete churn folds away at every fold
// threshold (not only at snapshot time), and the replayed spec carries
// exactly the surviving rows.
func TestIngestLogBoundedUnderChurn(t *testing.T) {
	ctx := context.Background()
	addrs := startDaemons(t, 2)
	sess, err := Open(ctx, WithTCPPeers(addrs...), WithDataset("dbpedia", 150, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	// 150 insert+delete cycles of the same tuples: 300 raw log appends
	// whose net effect is zero.
	for i := 0; i < 150; i++ {
		e := NewTuple(int64(1000+i%5), int64(2000+i%5))
		if err := sess.Insert("graph", e); err != nil {
			t.Fatal(err)
		}
		if err := sess.Delete("graph", e); err != nil {
			t.Fatal(err)
		}
	}
	// The threshold fold keeps the retained log within one fold window of
	// the net size (zero) at all times — 300 appends never accumulate.
	if n := sess.ingestLogLen(); n >= 2*ingestLogFoldEvery {
		t.Fatalf("log retains %d deltas after zero-net churn (fold threshold %d)", n, ingestLogFoldEvery)
	}
	if snap := sess.ingestSnapshot(); len(snap) != 0 {
		t.Fatalf("snapshot after zero-net churn: %d entries, want 0", len(snap))
	}

	// Three net inserts survive the fold: the snapshot is exactly the live
	// net change, and the replayed job sees it.
	live := []Tuple{
		NewTuple(int64(3000), int64(3001)),
		NewTuple(int64(3001), int64(3002)),
		NewTuple(int64(3002), int64(3000)),
	}
	if err := sess.Insert("graph", live...); err != nil {
		t.Fatal(err)
	}
	snap := sess.ingestSnapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot entries = %d, want 1", len(snap))
	}
	deltas, err := cluster.DecodeDeltas(snap[0].Deltas)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != len(live) {
		t.Fatalf("snapshot carries %d deltas, want the %d net rows", len(deltas), len(live))
	}
	for _, d := range deltas {
		if d.Op != types.OpInsert {
			t.Fatalf("net snapshot contains non-insert %v", d)
		}
	}

	// Replay correctness: the TCP job built from the folded log must agree
	// with an in-process session whose tables had only the net change.
	const q = `SELECT srcId, count(*) FROM graph GROUP BY srcId`
	got, err := sess.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Open(ctx, WithInProc(2), WithDataset("dbpedia", 150, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.Insert("graph", live...); err != nil {
		t.Fatal(err)
	}
	want, err := ref.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if gh, wh := bench.ResultHash(got.Tuples), bench.ResultHash(want.Tuples); gh != wh {
		t.Fatalf("folded-log replay %s != net-change reference %s", gh, wh)
	}
}
