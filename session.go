package rex

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/job"
	"github.com/rex-data/rex/internal/rql"
	"github.com/rex-data/rex/internal/srvproto"
	"github.com/rex-data/rex/internal/storage"
	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

// config collects the functional-option state of Open.
type config struct {
	nodes       int
	inproc      bool // WithInProc called explicitly
	replication int
	vnodes      int

	// transport selection; exactly one of these shapes the session.
	peers     []string // WithTCPPeers
	autospawn int      // WithAutoSpawn
	spawnBin  string
	spawnArgs []string

	// staged dataset (required for RQL over TCP, optional in-process).
	dataset     string
	datasetSize int
	datasetSeed int64

	// handlers names a delta-handler bundle registered on every process.
	handlers string

	// spillDir backs in-process stores with paged spill-to-disk files;
	// poolPages sizes the buffer pool (also shipped in TCP job specs).
	spillDir  string
	poolPages int

	// serverAddr selects the rexd client transport (WithServer);
	// serverTenant is the session's default tenant id, announced in the
	// hello frame.
	serverAddr   string
	serverTenant string
}

// Option configures Open.
type Option func(*config)

// WithInProc selects the in-process transport with n worker nodes (the
// default, with n=4): every node is an event loop on a goroutine and links
// are mailboxes carrying encoded frames.
func WithInProc(n int) Option {
	return func(c *config) { c.nodes = n; c.inproc = true }
}

// WithTCPPeers selects the TCP transport over already-running rexnode
// worker daemons. The address order fixes node ids: addrs[0] is node 0.
func WithTCPPeers(addrs ...string) Option {
	return func(c *config) { c.peers = append([]string(nil), addrs...) }
}

// WithAutoSpawn selects the TCP transport and spawns n local worker-daemon
// child processes. By default the session re-executes the current binary
// with a "-node" flag — programs using it must run ServeNode when invoked
// that way (see examples/quickstart) — or name any binary that does via
// WithSpawnCommand. Close tears the children down.
func WithAutoSpawn(n int) Option {
	return func(c *config) { c.autospawn = n }
}

// WithSpawnCommand overrides the binary and arguments WithAutoSpawn
// launches for each worker daemon.
func WithSpawnCommand(bin string, args ...string) Option {
	return func(c *config) { c.spawnBin = bin; c.spawnArgs = append([]string(nil), args...) }
}

// WithReplication sets the storage/checkpoint replication factor
// (default 3).
func WithReplication(r int) Option {
	return func(c *config) { c.replication = r }
}

// WithVirtualNodes sets the virtual nodes per worker on the consistent-hash
// ring (default 64).
func WithVirtualNodes(v int) Option {
	return func(c *config) { c.vnodes = v }
}

// WithDataset stages one of the named deterministic datasets (dbpedia,
// twitter, lineitem, points) generated from (size, seed). On a TCP session
// this is how queries get data at all — every worker daemon regenerates
// its own partition from the same parameters, so no tuples cross the wire.
// On an in-process session it stages the identical tables, making results
// comparable across transports.
func WithDataset(name string, size int, seed int64) Option {
	return func(c *config) { c.dataset = name; c.datasetSize = size; c.datasetSeed = seed }
}

// WithServer connects the session to a running rexd query server
// (cmd/rexd) instead of owning an engine: Query/Stream/Prepare/Subscribe
// and the ingestion APIs route transparently over one multiplexed
// connection, and the server schedules the work on its shared worker
// pool alongside every other client session. The server owns the
// catalog, datasets, and handler bundles, so WithServer cannot be
// combined with the engine-shaping options (WithInProc, WithTCPPeers,
// WithAutoSpawn, WithDataset, WithHandlers). Admission rejections
// surface as ErrServerBusy.
func WithServer(addr string) Option {
	return func(c *config) { c.serverAddr = addr }
}

// WithServerTenant sets the session's default tenant id on a server
// session: it is announced in the connection handshake and every request
// the session issues schedules under that tenant's admission quota and
// fairness lane unless a per-query WithTenant overrides it. Requires
// WithServer.
func WithServerTenant(id string) Option {
	return func(c *config) { c.serverTenant = id }
}

// WithSpillDir backs the in-process session's stores with the paged
// storage subsystem under dir: table state lives in slotted page files,
// a buffer pool (see WithBufferPoolPages) keeps the hot working set in
// RAM, and datasets larger than memory spill to disk instead of growing
// the heap. Session.Close flushes dirty pages and seals a durable
// checkpoint image. In-process sessions only — TCP daemons place their
// paged stores under their own rexnode -data-dir.
func WithSpillDir(dir string) Option {
	return func(c *config) { c.spillDir = dir }
}

// WithBufferPoolPages sizes the paged-store buffer pool in 8 KiB pages
// (0 = the default). On an in-process session it takes effect with
// WithSpillDir; on a TCP session it crosses the wire in each job spec so
// one knob pins the working-set budget cluster-wide.
func WithBufferPoolPages(n int) Option {
	return func(c *config) { c.poolPages = n }
}

// WithHandlers registers a named delta-handler bundle ("pagerank",
// "sssp-inc") at Open. Go closures cannot cross process boundaries, so TCP
// sessions can only use handlers both sides know by name: the bundle name
// travels in each job spec and every rexnode daemon registers the same
// handlers before compiling the query. On an in-process session the same
// bundle is registered into the local catalog, keeping RQL text portable
// across transports.
func WithHandlers(bundle string) Option {
	return func(c *config) { c.handlers = bundle }
}

// Session is a running REX deployment: a catalog plus worker nodes with
// partitioned, replicated storage — in this process (WithInProc) or as
// rexnode daemons over TCP (WithTCPPeers, WithAutoSpawn). One session runs
// queries sequentially; concurrent calls serialize on an internal lock.
type Session struct {
	mu  sync.Mutex
	cfg config

	// in-process deployments
	cat *catalog.Catalog
	eng *exec.Engine

	// TCP deployments
	jc *job.Cluster
	// schemaCat mirrors the staged dataset's schemas (plus the handler
	// bundle) for driver-side validation — built once at Open; the daemons
	// rebuild their real catalogs per job.
	schemaCat *catalog.Catalog

	// server sessions (WithServer): the multiplexed rexd connection.
	srv *serverConn

	// streamMu guards stream and sub — whichever currently holds mu (see
	// unlockWhenDone / adoptStanding). Close cancels them so an abandoned
	// stream or subscription cannot park the session lock forever.
	streamMu sync.Mutex
	stream   *exec.ResultStream
	sub      *Subscription

	// logMu guards ingestLog, the TCP session's base-table change log:
	// every accepted Insert/Delete/LoadDeltas is appended and replayed into
	// each subsequent job spec, so daemons — which regenerate data per
	// job — rebuild the revised tables. The log is kept compacted: each
	// table's deltas fold to their net effect (insert+delete annihilation,
	// replace-chain folding) whenever a fold threshold of raw appends
	// accumulates, and again at snapshot time, so the log — and with it
	// every job spec — stays bounded by the net change under churn.
	logMu     sync.Mutex
	ingestLog map[string]*tableLog
	logOrder  []string

	closed bool
}

// tableLog is one table's slice of the session change log.
type tableLog struct {
	keyCol    int
	deltas    []types.Delta
	sinceFold int
}

// ingestLogFoldEvery is the raw-append count after which a table's log
// refolds. Folding is O(appends since last fold + live entries), so the
// amortized cost per append is O(1) while the retained length stays within
// one threshold of the net change.
const ingestLogFoldEvery = 64

// fold compacts the table's log to its net effect via the shuffle
// compactor's same-key rules.
func (tl *tableLog) fold() {
	key := tl.keyCol
	c := cluster.NewCompactor(func(t types.Tuple) types.Value {
		if key < len(t) {
			return t[key]
		}
		return nil
	}, nil)
	for _, d := range tl.deltas {
		c.Add(d)
	}
	tl.deltas = c.Drain()
	tl.sinceFold = 0
}

// Open boots a session. With no options it is an in-process 4-node
// cluster, the modern equivalent of NewCluster:
//
//	s, err := rex.Open(ctx, rex.WithInProc(4))
//	defer s.Close()
//
// With a TCP option the same session API drives worker processes over
// real sockets:
//
//	s, err := rex.Open(ctx, rex.WithTCPPeers("h1:7101", "h2:7101"),
//		rex.WithDataset("dbpedia", 2000, 1))
func Open(ctx context.Context, opts ...Option) (*Session, error) {
	cfg := config{nodes: 4, replication: 3, vnodes: 64}
	for _, o := range opts {
		o(&cfg)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(cfg.peers) > 0 && cfg.autospawn > 0 {
		return nil, fmt.Errorf("rex: WithTCPPeers and WithAutoSpawn are mutually exclusive")
	}
	if cfg.inproc && (len(cfg.peers) > 0 || cfg.autospawn > 0) {
		return nil, fmt.Errorf("rex: WithInProc cannot be combined with WithTCPPeers/WithAutoSpawn")
	}
	if cfg.serverAddr != "" && (cfg.inproc || len(cfg.peers) > 0 || cfg.autospawn > 0 || cfg.dataset != "" || cfg.handlers != "") {
		return nil, fmt.Errorf("rex: WithServer cannot be combined with engine options (the rexd server owns the pool, datasets, and handlers)")
	}
	if cfg.spawnBin != "" && cfg.autospawn == 0 {
		return nil, fmt.Errorf("rex: WithSpawnCommand requires WithAutoSpawn")
	}
	if cfg.serverTenant != "" && cfg.serverAddr == "" {
		return nil, fmt.Errorf("rex: WithServerTenant requires WithServer (tenancy is a rexd scheduling concept)")
	}
	if cfg.spillDir != "" && (cfg.serverAddr != "" || len(cfg.peers) > 0 || cfg.autospawn > 0) {
		return nil, fmt.Errorf("rex: WithSpillDir is in-process only (rexnode daemons page under their own -data-dir)")
	}
	if cfg.handlers != "" {
		// Validate the bundle name eagerly on every transport; TCP daemons
		// register it per job from the spec.
		if err := job.RegisterBundle(catalog.New(), cfg.handlers); err != nil {
			return nil, err
		}
	}
	s := &Session{cfg: cfg}
	switch {
	case cfg.serverAddr != "":
		srv, err := dialServer(ctx, cfg.serverAddr, cfg.serverTenant)
		if err != nil {
			return nil, err
		}
		s.srv = srv
	case len(cfg.peers) > 0:
		jc, err := job.Connect(cfg.peers)
		if err != nil {
			return nil, err
		}
		s.jc = jc
		if err := s.buildSchemaCat(); err != nil {
			jc.Close()
			return nil, err
		}
	case cfg.autospawn > 0:
		bin, args := cfg.spawnBin, cfg.spawnArgs
		if bin == "" {
			bin, args = os.Args[0], []string{"-node"}
		}
		jc, err := job.SpawnLocal(cfg.autospawn, bin, args)
		if err != nil {
			return nil, err
		}
		s.jc = jc
		if err := s.buildSchemaCat(); err != nil {
			jc.Close()
			return nil, err
		}
	default:
		if cfg.nodes <= 0 {
			cfg.nodes = 4
		}
		s.cfg = cfg
		s.cat = catalog.New()
		s.eng = exec.NewEngine(cfg.nodes, cfg.vnodes, cfg.replication, s.cat)
		if cfg.spillDir != "" {
			if err := s.eng.UseSpill(cfg.spillDir, cfg.poolPages); err != nil {
				return nil, err
			}
		}
		if cfg.handlers != "" {
			if err := job.RegisterBundle(s.cat, cfg.handlers); err != nil {
				return nil, err
			}
		}
		if cfg.dataset != "" {
			tables, err := job.StageDataset(s.cat, cfg.dataset, cfg.datasetSize, cfg.datasetSeed)
			if err != nil {
				return nil, err
			}
			for _, tb := range tables {
				if err := s.loadLocked(tb.Name, tb.Tuples); err != nil {
					return nil, err
				}
			}
		}
	}
	return s, nil
}

// Close tears the session down: in-process mailboxes are closed; TCP
// connections are shut and daemons the session spawned are terminated and
// reaped. Close waits for an in-flight query to finish; a live DeltaStream
// (consumed or abandoned) is cancelled first, so Close never deadlocks
// behind a stream nobody is draining.
func (s *Session) Close() error {
	// Win s.mu without ever parking on it: the lock is held for a
	// stream's whole life, and a Stream call racing us registers its
	// stream only after acquiring the lock, so blocking on Lock() could
	// wait forever behind a stream we looked for too early. Re-check and
	// cancel until TryLock succeeds — once it does, no stream is live.
	for {
		s.streamMu.Lock()
		st, sub := s.stream, s.sub
		s.streamMu.Unlock()
		if st != nil {
			st.Close() // cancel + drain + wait; releases s.mu via unlockWhenDone
			continue
		}
		if sub != nil {
			sub.Close() // tear the standing dataflow down; releases s.mu
			continue
		}
		if s.mu.TryLock() {
			break
		}
		time.Sleep(time.Millisecond) // a buffered query run; wait it out
	}
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	switch {
	case s.srv != nil:
		return s.srv.close()
	case s.jc != nil:
		s.jc.Close()
		return nil
	default:
		err := s.eng.Transport.Close()
		// Flush after the workers are gone: dirty pages are sealed into
		// each paged store's checkpoint image (no-op without WithSpillDir).
		if serr := s.eng.CloseStores(); err == nil {
			err = serr
		}
		return err
	}
}

// PoolStats aggregates buffer-pool traffic across an in-process session's
// paged stores: hits, misses, evictions, and bytes spilled to page files.
// All-zero without WithSpillDir, and on TCP/server sessions (daemon pools
// are reported by their own processes).
//
// Deprecated: use Session.Stats — the unified snapshot; its Pool field
// carries the same record. PoolStats is a thin wrapper kept for source
// compatibility.
func (s *Session) PoolStats() PoolStats {
	if s.eng == nil {
		return PoolStats{}
	}
	return s.eng.PoolStats()
}

// lock acquires the session for one query, rejecting closed sessions
// with ErrSessionClosed.
func (s *Session) lock() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	return nil
}

// Nodes reports the worker count (the server's pool size on a server
// session).
func (s *Session) Nodes() int {
	if s.srv != nil {
		return s.srv.nodes
	}
	if s.jc != nil {
		return len(s.jc.Addrs())
	}
	return s.cfg.nodes
}

// transport returns the session's cluster transport.
func (s *Session) transport() cluster.Transport {
	if s.jc != nil {
		return s.jc.Transport()
	}
	return s.eng.Transport
}

// Catalog exposes the catalog for registering user-defined functions,
// aggregators, and delta handlers. Nil on TCP sessions — remote daemons
// rebuild their catalogs from job specs, so Go closures registered here
// could never reach them.
func (s *Session) Catalog() *catalog.Catalog { return s.cat }

// Engine exposes the underlying executor of an in-process session (nil on
// TCP sessions).
func (s *Session) Engine() *exec.Engine { return s.eng }

// inprocOnly guards the APIs that need local storage and a local catalog.
func (s *Session) inprocOnly(what string) error {
	if s.srv != nil {
		return fmt.Errorf("rex: %s is not available on a server session (the rexd server owns the catalog and engine)", what)
	}
	if s.jc != nil {
		return fmt.Errorf("rex: %s is not available on a TCP session (workers rebuild state from job specs; stage data with WithDataset or run a Workload)", what)
	}
	return nil
}

// CreateTable declares a table hash-partitioned by the given column. On
// a server session the declaration lands in the server's shared catalog
// (and bumps its version, invalidating cached plans).
func (s *Session) CreateTable(name string, schema *types.Schema, partitionKey int) error {
	if s.srv != nil {
		fields := make([]string, schema.Len())
		for i, f := range schema.Fields {
			fields[i] = f.Name + ":" + f.Kind.String()
		}
		_, err := s.srv.roundTrip(context.Background(), srvproto.Request{
			Op: srvproto.OpCreateTable, Table: name, Fields: fields, Key: partitionKey,
		})
		return err
	}
	if err := s.inprocOnly("CreateTable"); err != nil {
		return err
	}
	return s.cat.AddTable(&catalog.Table{Name: name, Schema: schema, PartitionKey: partitionKey})
}

// CatalogVersion reports the session's schema version: the catalog's on
// an in-process session, the staged schema catalog's over TCP, 0 on a
// server session (the server tracks its own; see ServerStats). Plan
// caches key on it.
func (s *Session) CatalogVersion() int64 {
	switch {
	case s.cat != nil:
		return s.cat.Version()
	case s.schemaCat != nil:
		return s.schemaCat.Version()
	default:
		return 0
	}
}

// Load distributes tuples into the table's replicated partitions. It works
// on every transport: in-process the tuples go straight to the replicated
// stores; on a TCP session the load joins the session's change log, which
// every subsequent job replays into the daemons' regenerated tables; with
// a live subscription the load runs as an incremental ingestion round.
func (s *Session) Load(table string, tuples []Tuple) error {
	if s.jc == nil && s.srv == nil && s.liveSub() == nil {
		if err := s.lock(); err != nil {
			return err
		}
		defer s.mu.Unlock()
		return s.loadLocked(table, tuples)
	}
	return s.LoadDeltas(table, types.Inserts(tuples...))
}

// Insert ingests tuples as base-table insertions — delta-mode Load. A thin
// synchronous wrapper over IngestAsync: with a live subscription the
// change joins the next (possibly coalesced) incremental round and the
// call returns when that round's fixpoint completes; round statistics are
// on Subscription.Rounds.
func (s *Session) Insert(table string, tuples ...Tuple) error {
	return s.LoadDeltas(table, types.Inserts(tuples...))
}

// Delete ingests base-table deletions (see Insert). Deletions are exact
// for invertible operators (count/sum aggregates, set-semantics joins);
// min/max-style monotone recursions need insert-only churn — the same
// contract every incremental view-maintenance system carries.
func (s *Session) Delete(table string, tuples ...Tuple) error {
	deltas := make([]Delta, len(tuples))
	for i, t := range tuples {
		deltas[i] = Delete(t)
	}
	return s.LoadDeltas(table, deltas)
}

// LoadDeltas ingests an arbitrary base-table delta batch (insertions,
// deletions, replacements) — the general form of Insert/Delete, and the
// synchronous wrapper over IngestAsync: it blocks until the covering
// round completes (a no-op wait when no subscription is live).
func (s *Session) LoadDeltas(table string, deltas []Delta) error {
	if len(deltas) == 0 {
		return nil
	}
	ack, err := s.IngestAsync(table, deltas)
	if err != nil {
		return err
	}
	_, err = ack.Wait(context.Background())
	return err
}

// IngestAsync ingests a base-table delta batch without blocking on the
// covering round. With a live subscription the batch enqueues on the
// resident dataflow's ingestion pipeline: requests queued while a round is
// running coalesce — same-key deltas fold through the shuffle compactor —
// into a single follow-up round, and the returned ack resolves when that
// round's fixpoint completes (its output deltas are on the subscription
// stream by then). Without a subscription the change applies synchronously
// (store revision in-process, change-log append over TCP) and the ack is
// already resolved. Safe for concurrent callers.
func (s *Session) IngestAsync(table string, deltas []Delta) (*IngestAck, error) {
	return s.Ingests(map[string][]Delta{table: deltas})
}

// Ingests is the multi-table batched form of IngestAsync: every table's
// deltas ride the same covering round (or the same synchronous apply).
func (s *Session) Ingests(batches map[string][]Delta) (*IngestAck, error) {
	names := make([]string, 0, len(batches))
	total := 0
	for table, deltas := range batches {
		if len(deltas) == 0 {
			continue
		}
		names = append(names, table)
		total += len(deltas)
	}
	if total == 0 {
		return exec.ResolvedAck(nil, nil), nil
	}
	sort.Strings(names)
	if s.srv != nil {
		// Server sessions ship every ingest over the wire — the server
		// applies it to the shared pool, fans it out to standing queries,
		// and replies once every covering round completed, so the returned
		// ack is already resolved (with the requester's own covering round
		// stats when it holds a subscription).
		m := make(map[string][]types.Delta, len(names))
		for _, table := range names {
			m[table] = batches[table]
		}
		tr, err := s.srv.ingest(context.Background(), m)
		if err != nil {
			return nil, err
		}
		return exec.ResolvedAck(tr.Round, nil), nil
	}
	if sub := s.liveSub(); sub != nil {
		m := make(map[string][]types.Delta, len(names))
		for _, table := range names {
			m[table] = batches[table]
		}
		return sub.sq.IngestAsync(m)
	}
	if s.jc != nil {
		for _, table := range names {
			if err := s.validateIngest(table, batches[table]); err != nil {
				return nil, err
			}
		}
		// Serialize on the session lock like the in-process path: a closed
		// session must reject the change, not silently log it.
		if err := s.lock(); err != nil {
			return nil, err
		}
		defer s.mu.Unlock()
		for _, table := range names {
			s.appendIngestLog(table, batches[table])
		}
		return exec.ResolvedAck(nil, nil), nil
	}
	if err := s.lock(); err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	// Validate every table before touching any store so a bad batch cannot
	// apply partially.
	for _, table := range names {
		tab, err := s.cat.Table(table)
		if err != nil {
			return nil, err
		}
		if err := checkDeltaArity(table, tab.Schema.Len(), batches[table]); err != nil {
			return nil, err
		}
	}
	loader := &storage.Loader{Ring: s.eng.Ring, Stores: s.eng.Stores}
	for _, table := range names {
		tab, _ := s.cat.Table(table)
		if err := loader.Apply(table, tab.PartitionKey, batches[table]); err != nil {
			return nil, err
		}
		s.bumpStats(table, batches[table])
	}
	return exec.ResolvedAck(nil, nil), nil
}

func checkDeltaArity(table string, arity int, deltas []Delta) error {
	for _, d := range deltas {
		if len(d.Tup) != arity || (d.Op == types.OpReplace && len(d.Old) != arity) {
			return fmt.Errorf("rex: ingest into %s: tuple %v does not match the %d-column schema", table, d.Tup, arity)
		}
	}
	return nil
}

// buildSchemaCat stages the dataset's schemas (and the handler bundle)
// into a driver-side validation catalog, once per session.
func (s *Session) buildSchemaCat() error {
	if s.cfg.dataset == "" {
		return nil
	}
	cat := catalog.New()
	if err := job.StageSchemas(cat, s.cfg.dataset, s.cfg.datasetSize); err != nil {
		return err
	}
	if s.cfg.handlers != "" {
		if err := job.RegisterBundle(cat, s.cfg.handlers); err != nil {
			return err
		}
	}
	s.schemaCat = cat
	return nil
}

// validateIngest checks a TCP-session ingest against the staged dataset's
// schemas before it enters the replayed change log.
func (s *Session) validateIngest(table string, deltas []Delta) error {
	if s.schemaCat == nil {
		return fmt.Errorf("rex: TCP sessions need WithDataset before ingesting (tables are staged from it)")
	}
	tab, err := s.schemaCat.Table(table)
	if err != nil {
		return err
	}
	return checkDeltaArity(table, tab.Schema.Len(), deltas)
}

// appendIngestLog records an accepted change for replay into future jobs,
// refolding the table's slice whenever the fold threshold of raw appends
// accumulates so the retained log tracks the net change, not the churn.
func (s *Session) appendIngestLog(table string, deltas []Delta) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.ingestLog == nil {
		s.ingestLog = map[string]*tableLog{}
	}
	tl := s.ingestLog[table]
	if tl == nil {
		keyCol := 0
		if s.schemaCat != nil {
			if tab, err := s.schemaCat.Table(table); err == nil {
				keyCol = tab.PartitionKey
			}
		}
		tl = &tableLog{keyCol: keyCol}
		s.ingestLog[table] = tl
		s.logOrder = append(s.logOrder, table)
	}
	tl.deltas = append(tl.deltas, deltas...)
	tl.sinceFold += len(deltas)
	if tl.sinceFold >= ingestLogFoldEvery {
		tl.fold()
	}
}

// ingestSnapshot folds and encodes the change log for a job spec: at most
// one entry per table (first-touch order), carrying the net effect of
// every accepted change.
func (s *Session) ingestSnapshot() []job.IngestedTable {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	var out []job.IngestedTable
	for _, table := range s.logOrder {
		tl := s.ingestLog[table]
		if tl.sinceFold > 0 {
			tl.fold()
		}
		if len(tl.deltas) == 0 {
			continue
		}
		out = append(out, job.IngestedTable{Table: table, Deltas: cluster.EncodeDeltas(tl.deltas)})
	}
	return out
}

// ingestLogLen reports the change log's retained delta count (tests assert
// boundedness under churn).
func (s *Session) ingestLogLen() int {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	n := 0
	for _, tl := range s.ingestLog {
		n += len(tl.deltas)
	}
	return n
}

// bumpStats revises the catalog's row-count estimate after an ingest (the
// estimate steers costing, never correctness).
func (s *Session) bumpStats(table string, deltas []Delta) {
	if s.cat == nil {
		return
	}
	tab, err := s.cat.Table(table)
	if err != nil {
		return
	}
	var net int64
	for _, d := range deltas {
		switch d.Op {
		case types.OpInsert, types.OpUpdate:
			net++
		case types.OpDelete:
			net--
		}
	}
	stats := tab.Stats
	stats.RowCount += net
	if stats.RowCount < 0 {
		stats.RowCount = 0
	}
	_ = s.cat.SetStats(table, stats)
}

func (s *Session) loadLocked(table string, tuples []Tuple) error {
	tab, err := s.cat.Table(table)
	if err != nil {
		return err
	}
	stats := tab.Stats
	stats.RowCount += int64(len(tuples))
	if err := s.eng.Load(table, tab.PartitionKey, tuples); err != nil {
		return err
	}
	return s.cat.SetStats(table, stats)
}

// RegisterFunc registers a scalar UDF callable from RQL.
func (s *Session) RegisterFunc(name string, argKinds []types.Kind, ret types.Kind,
	deterministic bool, fn func(args []Value) (Value, error)) error {
	if err := s.inprocOnly("RegisterFunc"); err != nil {
		return err
	}
	return s.cat.RegisterFunc(&catalog.FuncDef{
		Name: name, ArgKinds: argKinds, RetKind: ret,
		Fn: expr.ScalarFn(fn), Deterministic: deterministic,
	})
}

// JoinHandler registers a join-state delta handler (§3.3): called with the
// join buckets for a delta's key; revises them and returns output deltas.
func (s *Session) JoinHandler(name string, out *types.Schema,
	fn func(left, right *TupleSet, d Delta, fromLeft bool) ([]Delta, error)) error {
	if err := s.inprocOnly("JoinHandler"); err != nil {
		return err
	}
	return s.cat.RegisterJoinHandler(&uda.FuncJoinHandler{HName: name, Out: out, Fn: fn})
}

// WhileHandler registers a while-state delta handler (§3.3): called by the
// fixpoint with the state bucket for a delta's key; returns the Δ set to
// feed the next stratum.
func (s *Session) WhileHandler(name string,
	fn func(rel *TupleSet, d Delta) ([]Delta, error)) error {
	if err := s.inprocOnly("WhileHandler"); err != nil {
		return err
	}
	return s.cat.RegisterWhileHandler(&uda.FuncWhileHandler{HName: name, Fn: fn})
}

// Query compiles and executes an RQL query with default options.
//
// Deprecated: use QueryCtx — the canonical, context-first entry point.
// Query is a thin wrapper kept for source compatibility.
func (s *Session) Query(src string) (*Result, error) {
	return s.QueryCtx(context.Background(), src)
}

// QueryCtx compiles and executes an RQL query under a context: cancelling
// it (or hitting its deadline) aborts the query between strata with
// context.Canceled / DeadlineExceeded, and the session stays usable for
// the next query. When no failure recovery is requested the execution
// streams internally — per-stratum delta batches are folded as they
// arrive instead of the full result set buffering in the requestor. It is
// the canonical query entry point on every transport; on a server session
// the text ships to the rexd server, which executes it from its shared
// plan cache. Per-query knobs are QueryOptions:
//
//	s.QueryCtx(ctx, src, rex.WithTenant("acme"), rex.WithPriority(rex.PriorityHigh))
func (s *Session) QueryCtx(ctx context.Context, src string, qopts ...QueryOption) (*Result, error) {
	opts := buildOptions(qopts)
	if s.srv != nil {
		return s.serverQuery(ctx, src, nil, opts)
	}
	if s.jc != nil {
		spec, err := s.rqlSpec(src, opts)
		if err != nil {
			return nil, err
		}
		return s.runTCP(ctx, spec, driverTune(opts))
	}
	plan, err := rql.Compile(src, s.cat, s.cfg.nodes)
	if err != nil {
		return nil, err
	}
	if err := s.lock(); err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	return s.runInProcLocked(ctx, plan, opts)
}

// QueryWithOptions is QueryCtx with a background context and a struct
// options form.
//
// Deprecated: use QueryCtx with QueryOptions (WithOptions bridges an
// existing Options value). QueryWithOptions is a thin wrapper kept for
// source compatibility.
func (s *Session) QueryWithOptions(src string, opts Options) (*Result, error) {
	return s.QueryCtx(context.Background(), src, WithOptions(opts))
}

// RunPlan executes a hand-built physical plan (the plan-level API used by
// the algorithm library and benchmarks) on an in-process session.
func (s *Session) RunPlan(ctx context.Context, plan *exec.PlanSpec, opts Options) (*Result, error) {
	if err := s.inprocOnly("RunPlan"); err != nil {
		return nil, err
	}
	if err := s.lock(); err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	return s.eng.RunCtx(ctx, plan, opts)
}

// Stream compiles src and executes it in streaming-result mode: the
// returned DeltaStream yields each stratum's state-change batch as
// punctuation closes the stratum on every node, instead of buffering the
// full result set. Works on both transports. The stream must be consumed
// or Closed; QueryCtx is the convenience wrapper that drains it.
func (s *Session) Stream(ctx context.Context, src string, qopts ...QueryOption) (*DeltaStream, error) {
	opts := buildOptions(qopts)
	if s.srv != nil {
		return s.serverStream(ctx, src, nil, opts)
	}
	if s.jc != nil {
		spec, err := s.rqlSpec(src, opts)
		if err != nil {
			return nil, err
		}
		if err := s.lock(); err != nil {
			return nil, err
		}
		st, err := s.jc.StreamCtx(ctx, spec, driverTune(opts))
		return s.unlockWhenDone(st, err)
	}
	plan, err := rql.Compile(src, s.cat, s.cfg.nodes)
	if err != nil {
		return nil, err
	}
	if err := s.lock(); err != nil {
		return nil, err
	}
	st, err := s.eng.Stream(ctx, plan, opts)
	return s.unlockWhenDone(st, err)
}

// StreamPlan is Stream for a hand-built physical plan (in-process only).
func (s *Session) StreamPlan(ctx context.Context, plan *exec.PlanSpec, opts Options) (*DeltaStream, error) {
	if err := s.inprocOnly("StreamPlan"); err != nil {
		return nil, err
	}
	if err := s.lock(); err != nil {
		return nil, err
	}
	st, err := s.eng.Stream(ctx, plan, opts)
	return s.unlockWhenDone(st, err)
}

// RunWorkload executes a self-contained workload description. On a TCP
// session this is the full multi-process path: the spec ships to every
// daemon, each rebuilds the identical catalog, plan, and data partition,
// and the session process coordinates the query. On an in-process session
// the same spec runs on a fresh single-process engine, so results are
// directly comparable across transports. tune, when non-nil, adjusts the
// driver-side options (recovery strategy, stratum hooks) before the run.
func (s *Session) RunWorkload(ctx context.Context, w *Workload, tune func(*Options)) (*Result, error) {
	if s.srv != nil {
		return nil, fmt.Errorf("rex: RunWorkload is not available on a server session (submit RQL; the server owns the pool)")
	}
	if err := s.lock(); err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	if s.jc != nil {
		return s.jc.RunCtx(ctx, w, tune)
	}
	clone := *w // the runner normalizes its copy; keep the caller's spec pristine
	return job.RunInProcCtx(ctx, &clone, tune)
}

// StreamWorkload is RunWorkload in streaming-result mode.
func (s *Session) StreamWorkload(ctx context.Context, w *Workload, tune func(*Options)) (*DeltaStream, error) {
	if s.srv != nil {
		return nil, fmt.Errorf("rex: StreamWorkload is not available on a server session (submit RQL; the server owns the pool)")
	}
	if err := s.lock(); err != nil {
		return nil, err
	}
	if s.jc != nil {
		st, err := s.jc.StreamCtx(ctx, w, tune)
		return s.unlockWhenDone(st, err)
	}
	st, err := job.StreamInProc(ctx, w, tune)
	return s.unlockWhenDone(st, err)
}

// Kill injects a node failure (for testing recovery). On TCP sessions the
// remote daemon is told to drop traffic and pushes a final stats frame so
// the dead node's traffic stays in the byte accounting.
func (s *Session) Kill(node int) error {
	if s.srv != nil {
		return fmt.Errorf("rex: Kill is not available on a server session")
	}
	if node < 0 || node >= s.Nodes() {
		return fmt.Errorf("rex: no node %d (cluster has %d)", node, s.Nodes())
	}
	s.transport().Kill(cluster.NodeID(node))
	return nil
}

// Revive restores a killed node so successive runs can reuse the session.
func (s *Session) Revive(node int) error {
	if s.srv != nil {
		return fmt.Errorf("rex: Revive is not available on a server session")
	}
	if node < 0 || node >= s.Nodes() {
		return fmt.Errorf("rex: no node %d (cluster has %d)", node, s.Nodes())
	}
	s.transport().Revive(cluster.NodeID(node))
	return nil
}

// BytesShipped reports the total bytes sent between workers — measured
// wire bytes on both transports (socket bytes over TCP, after the
// end-of-run metrics sync).
func (s *Session) BytesShipped() int64 {
	if s.srv != nil {
		return 0 // the server's pool does the shipping; see ServerStats
	}
	return s.transport().Metrics().TotalBytesSent()
}

// runInProcLocked executes a compiled plan, streaming internally when the
// options allow it (recovery needs the buffered requestor path).
func (s *Session) runInProcLocked(ctx context.Context, plan *exec.PlanSpec, opts Options) (*Result, error) {
	if opts.Recovery != RecoveryNone {
		return s.eng.RunCtx(ctx, plan, opts)
	}
	st, err := s.eng.Stream(ctx, plan, opts)
	if err != nil {
		return nil, err
	}
	return st.Drain()
}

// runTCP executes a job spec over the session's daemon cluster, streaming
// internally when the options allow it.
func (s *Session) runTCP(ctx context.Context, spec *job.Spec, tune func(*Options)) (*Result, error) {
	if err := s.lock(); err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	if hasRecovery(tune) {
		return s.jc.RunCtx(ctx, spec, tune)
	}
	st, err := s.jc.StreamCtx(ctx, spec, tune)
	if err != nil {
		return nil, err
	}
	return st.Drain()
}

// hasRecovery reports whether tune installs a recovery strategy.
func hasRecovery(tune func(*Options)) bool {
	if tune == nil {
		return false
	}
	var o Options
	tune(&o)
	return o.Recovery != RecoveryNone
}

// rqlSpec shapes an RQL query as a job spec for the daemon cluster.
func (s *Session) rqlSpec(src string, opts Options) (*job.Spec, error) {
	if s.cfg.dataset == "" {
		return nil, fmt.Errorf("rex: TCP sessions need WithDataset to stage data for RQL queries (or run a self-contained Workload)")
	}
	return &job.Spec{
		Workload: "rql",
		Dataset:  s.cfg.dataset, Size: s.cfg.datasetSize, Seed: s.cfg.datasetSeed,
		Query:  src,
		VNodes: s.cfg.vnodes, Replication: s.cfg.replication,
		BatchSize: opts.BatchSize, Compaction: opts.Compaction,
		Checkpoint: opts.Checkpoint, CompactionHighWater: opts.CompactionHighWater,
		MaxStrata: opts.MaxStrata, NoVectorize: opts.NoVectorize,
		Handlers:        s.cfg.handlers,
		Ingest:          s.ingestSnapshot(),
		BufferPoolPages: s.cfg.poolPages,
	}, nil
}

// driverTune carries the driver-side (non-wire) options into a TCP run.
func driverTune(opts Options) func(*Options) {
	return func(o *Options) {
		o.Recovery = opts.Recovery
		o.TermFn = opts.TermFn
		o.OnStratum = opts.OnStratum
	}
}

// unlockWhenDone hands the session lock to a running stream: it is
// released when the stream's query fully tears down. The stream is
// recorded so Close can cancel it if the caller abandons it.
func (s *Session) unlockWhenDone(st *exec.ResultStream, err error) (*DeltaStream, error) {
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.streamMu.Lock()
	s.stream = st
	s.streamMu.Unlock()
	go func() {
		<-st.Done()
		s.streamMu.Lock()
		if s.stream == st {
			s.stream = nil
		}
		s.streamMu.Unlock()
		s.mu.Unlock()
	}()
	return st, nil
}
