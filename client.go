package rex

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/srvproto"
	"github.com/rex-data/rex/internal/types"
)

// ServerStats is the rexd server's counter snapshot: sessions admitted,
// queries run and rejected, plan-cache hits/misses/compiles, standing
// rounds. Reported by Session.ServerStats on server sessions and by the
// server's /stats HTTP endpoint.
type ServerStats = srvproto.ServerStats

// handshakeTimeout bounds the hello exchange when the dialing context
// carries no deadline of its own.
const handshakeTimeout = 30 * time.Second

// serverConn is a client session's connection to a rexd server: one
// socket multiplexing every request the session issues. A write mutex
// serializes outgoing frames; a demux read loop routes incoming frames
// to their request by the echoed id. Data-carrying requests feed a
// remote ResultStream (so Query/Stream/Subscribe hand back the same
// stream type an in-process run does); single-reply requests park on a
// buffered channel.
type serverConn struct {
	nc       net.Conn
	nodes    int
	readDone chan struct{}

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[int]*srvPending
	nextID  int
	closed  bool
	err     error // terminal connection error, nil on deliberate close
}

// srvPending routes one in-flight request's reply frames. Exactly one of
// feeder/reply is set.
type srvPending struct {
	feeder  *exec.StreamFeeder
	onRound func(RoundStats)
	reply   chan cluster.Message
}

// dialServer connects and performs the hello exchange, announcing the
// session's default tenant.
func dialServer(ctx context.Context, addr, tenant string) (*serverConn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rex: dial server %s: %w", addr, err)
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = time.Now().Add(handshakeTimeout)
	}
	_ = nc.SetDeadline(deadline)
	hello := cluster.Message{Kind: cluster.MsgHello, Payload: srvproto.EncodeJSON(srvproto.Hello{Version: srvproto.Version, Tenant: tenant})}
	if err := srvproto.WriteMsg(nc, hello); err != nil {
		nc.Close()
		return nil, fmt.Errorf("rex: server handshake: %w", err)
	}
	br := bufio.NewReader(nc)
	m, err := srvproto.ReadMsg(br)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("rex: server handshake: %w", err)
	}
	if m.Kind != cluster.MsgHello {
		nc.Close()
		return nil, fmt.Errorf("rex: server handshake: unexpected frame kind %d", m.Kind)
	}
	var w srvproto.Welcome
	if err := json.Unmarshal(m.Payload, &w); err != nil {
		nc.Close()
		return nil, fmt.Errorf("rex: server handshake: %w", err)
	}
	if !w.OK {
		nc.Close()
		return nil, srvproto.Rehydrate(w.Code, w.Err)
	}
	_ = nc.SetDeadline(time.Time{})
	c := &serverConn{
		nc:       nc,
		nodes:    w.Nodes,
		readDone: make(chan struct{}),
		pending:  map[int]*srvPending{},
	}
	go c.readLoop(br)
	return c, nil
}

// register allocates a request id for a pending entry.
func (c *serverConn) register(p *srvPending) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		if c.err != nil {
			return 0, fmt.Errorf("rex: server connection lost: %w", c.err)
		}
		return 0, ErrSessionClosed
	}
	c.nextID++
	c.pending[c.nextID] = p
	return c.nextID, nil
}

func (c *serverConn) unregister(id int) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// write sends one frame under the write mutex.
func (c *serverConn) write(m cluster.Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return srvproto.WriteMsg(c.nc, m)
}

// sendReq ships a request frame; on a write failure the pending entry is
// withdrawn (the read loop will observe the broken socket shortly). The
// request's priority rides the frame header too, so the server can
// classify it before decoding the JSON body.
func (c *serverConn) sendReq(id int, req srvproto.Request) error {
	m := cluster.Message{Kind: cluster.MsgQuery, Edge: id, Payload: srvproto.EncodeJSON(req)}
	if req.Opts != nil {
		m.Priority = req.Opts.Priority
	}
	err := c.write(m)
	if err != nil {
		c.unregister(id)
		return fmt.Errorf("rex: send to server: %w", err)
	}
	return nil
}

// cancelReq asks the server to abort an in-flight request; best-effort —
// the addressed request always ends with its own terminal frame.
func (c *serverConn) cancelReq(id int) {
	_ = c.write(cluster.Message{Kind: cluster.MsgQuery, Payload: srvproto.EncodeJSON(srvproto.Request{Op: srvproto.OpCancel, Target: id})})
}

// readLoop demultiplexes server frames to their pending requests until
// the connection dies.
func (c *serverConn) readLoop(br *bufio.Reader) {
	defer close(c.readDone)
	for {
		m, err := srvproto.ReadMsg(br)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		p := c.pending[m.Edge]
		if m.Kind == cluster.MsgErr || m.Closed {
			delete(c.pending, m.Edge)
		}
		c.mu.Unlock()
		if p == nil {
			continue // reply to a cancelled/abandoned request
		}
		if p.reply != nil {
			if m.Kind == cluster.MsgErr || m.Closed {
				select {
				case p.reply <- m:
				default:
				}
			}
			continue
		}
		c.deliverStream(p, m)
	}
}

// deliverStream routes one frame of a data-carrying request into its
// remote stream.
func (c *serverConn) deliverStream(p *srvPending, m cluster.Message) {
	switch m.Kind {
	case cluster.MsgErr:
		p.feeder.Finish(nil, srvproto.Rehydrate(m.Count, m.Table))
	case cluster.MsgRows:
		if len(m.Payload) > 0 {
			ds, err := cluster.DecodeDeltas(m.Payload)
			if err != nil {
				// Corrupt framing poisons the whole connection, not just
				// this request — nothing after it can be trusted.
				c.fail(fmt.Errorf("rex: server stream decode: %w", err))
				c.nc.Close()
				return
			}
			p.feeder.Push(exec.StreamBatch{Stratum: m.Stratum, Round: m.Count, Deltas: ds})
		}
		if m.Terminate && p.onRound != nil {
			if tr, err := parseTrailer(m); err == nil && tr.Round != nil {
				p.onRound(*tr.Round)
			}
		}
		if m.Closed {
			tr, err := parseTrailer(m)
			if err != nil {
				p.feeder.Finish(nil, err)
				return
			}
			res := tr.Result
			if res == nil {
				res = &exec.Result{}
			}
			p.feeder.Finish(res, nil)
		}
	}
}

func parseTrailer(m cluster.Message) (*srvproto.Trailer, error) {
	var tr srvproto.Trailer
	if m.Table != "" {
		if err := json.Unmarshal([]byte(m.Table), &tr); err != nil {
			return nil, fmt.Errorf("rex: server trailer: %w", err)
		}
	}
	return &tr, nil
}

// fail terminates every pending request with err (connection lost).
func (c *serverConn) fail(err error) {
	c.mu.Lock()
	if c.closed && c.err == nil {
		// Deliberate close racing the read loop's socket error: report
		// the close, not the wreckage it caused.
		err = ErrSessionClosed
	}
	if !c.closed {
		c.closed = true
		c.err = err
	}
	pend := c.pending
	c.pending = map[int]*srvPending{}
	c.mu.Unlock()
	for _, p := range pend {
		if p.feeder != nil {
			p.feeder.Finish(nil, err)
		}
		if p.reply != nil {
			select {
			case p.reply <- cluster.Message{Kind: cluster.MsgErr, Count: srvproto.CodeFor(err), Table: err.Error()}:
			default:
			}
		}
	}
}

// close shuts the connection down; pending requests fail with
// ErrSessionClosed.
func (c *serverConn) close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.readDone
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.nc.Close()
	<-c.readDone // readLoop fails the stragglers with ErrSessionClosed
	return nil
}

// roundTrip issues a single-reply request and parses its trailer.
func (c *serverConn) roundTrip(ctx context.Context, req srvproto.Request) (*srvproto.Trailer, error) {
	p := &srvPending{reply: make(chan cluster.Message, 1)}
	id, err := c.register(p)
	if err != nil {
		return nil, err
	}
	if err := c.sendReq(id, req); err != nil {
		return nil, err
	}
	select {
	case m := <-p.reply:
		if m.Kind == cluster.MsgErr {
			return nil, srvproto.Rehydrate(m.Count, m.Table)
		}
		return parseTrailer(m)
	case <-ctx.Done():
		c.cancelReq(id)
		return nil, ctx.Err()
	}
}

// openStream issues a data-carrying request and returns its remote
// stream. Closing the stream (or ctx expiring) cancels the request
// server-side; the stream always terminates with the server's final
// frame or the connection's failure.
func (c *serverConn) openStream(ctx context.Context, req srvproto.Request, onRound func(RoundStats)) (*exec.ResultStream, error) {
	p := &srvPending{onRound: onRound}
	id, err := c.register(p)
	if err != nil {
		return nil, err
	}
	st, feeder := exec.NewRemoteStream(func() { c.cancelReq(id) })
	p.feeder = feeder
	if err := c.sendReq(id, req); err != nil {
		feeder.Finish(nil, err)
		return nil, err
	}
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				c.cancelReq(id)
			case <-st.Done():
			}
		}()
	}
	return st, nil
}

// ingest applies base-table delta batches server-side, returning after
// every covering standing-query round completed.
func (c *serverConn) ingest(ctx context.Context, batches map[string][]types.Delta) (*srvproto.Trailer, error) {
	tables := make(map[string][]byte, len(batches))
	for table, deltas := range batches {
		tables[table] = cluster.EncodeDeltas(deltas)
	}
	return c.roundTrip(ctx, srvproto.Request{Op: srvproto.OpIngest, Tables: tables})
}

// serverUnsupported rejects option fields that cannot travel to a rexd
// server: recovery is a driver-side protocol and the hook callbacks are
// Go closures.
func serverUnsupported(opts Options) error {
	if opts.Recovery != RecoveryNone {
		return fmt.Errorf("rex: server sessions do not support failure-recovery options (the server owns recovery)")
	}
	if opts.TermFn != nil || opts.OnStratum != nil {
		return fmt.Errorf("rex: server sessions do not support driver-side hooks (TermFn/OnStratum)")
	}
	return nil
}

// wireOpts extracts the wire-travelling option subset.
func wireOpts(opts Options) *srvproto.QueryOpts {
	if opts.BatchSize == 0 && opts.MaxStrata == 0 && !opts.Compaction && opts.CompactionHighWater == 0 &&
		!opts.Checkpoint && !opts.NoVectorize && opts.Tenant == "" && opts.Priority == 0 {
		return nil
	}
	return &srvproto.QueryOpts{
		BatchSize:           opts.BatchSize,
		MaxStrata:           opts.MaxStrata,
		Compaction:          opts.Compaction,
		CompactionHighWater: opts.CompactionHighWater,
		Checkpoint:          opts.Checkpoint,
		NoVectorize:         opts.NoVectorize,
		Tenant:              opts.Tenant,
		Priority:            opts.Priority,
	}
}

// serverStream opens a streaming execution over the server connection,
// holding the session lock for the stream's life like every other
// transport (released through unlockWhenDone).
func (s *Session) serverStream(ctx context.Context, src string, args []Value, opts Options) (*DeltaStream, error) {
	if err := serverUnsupported(opts); err != nil {
		return nil, err
	}
	req := srvproto.Request{Op: srvproto.OpStream, Src: src, Args: srvproto.EncodeArgs(args), Opts: wireOpts(opts)}
	if err := s.lock(); err != nil {
		return nil, err
	}
	st, err := s.srv.openStream(ctx, req, nil)
	return s.unlockWhenDone(st, err)
}

// serverQuery is the buffered form: stream and drain, mirroring how the
// other transports execute without recovery.
func (s *Session) serverQuery(ctx context.Context, src string, args []Value, opts Options) (*Result, error) {
	st, err := s.serverStream(ctx, src, args, opts)
	if err != nil {
		return nil, err
	}
	return st.Drain()
}

// ServerStats reports the rexd server's counters — plan-cache hits and
// misses included. Server sessions only.
//
// Deprecated: use Session.Stats — the unified snapshot; its Server field
// carries the same record plus the scheduler counters. ServerStats is a
// thin wrapper kept for source compatibility.
func (s *Session) ServerStats(ctx context.Context) (*ServerStats, error) {
	if s.srv == nil {
		return nil, fmt.Errorf("rex: ServerStats requires a server session (rex.WithServer)")
	}
	st, err := s.Stats(ctx)
	if err != nil {
		return nil, err
	}
	return st.Server, nil
}
