package rex

import (
	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/srvproto"
)

// Sentinel errors returned from session and server paths. Assert with
// errors.Is: wrapped forms carry context ("catalog: unknown table
// \"edges\"") while still matching the sentinel.
var (
	// ErrSessionClosed rejects any operation on a session after Close.
	ErrSessionClosed = srvproto.ErrSessionClosed
	// ErrUnknownTable rejects queries and ingests naming a table the
	// catalog does not know.
	ErrUnknownTable = catalog.ErrUnknownTable
	// ErrServerBusy rejects work a rexd server cannot admit: the
	// admission queue is full, or the server is at its session cap.
	ErrServerBusy = srvproto.ErrServerBusy
	// ErrTenantBusy rejects work past the requesting tenant's inflight
	// quota on a rexd server. Unlike ErrServerBusy it says nothing about
	// overall server load — only that this tenant is at its cap.
	ErrTenantBusy = srvproto.ErrTenantBusy
)
