// Package rex is a from-scratch Go implementation of REX — the recursive,
// delta-based data-centric computation engine of Mihaylov, Ives and Guha
// (PVLDB 5(11), 2012). It exposes a shared-nothing parallel query engine
// whose recursive queries propagate programmable deltas between iterations
// instead of recomputing full state, with SQL-style queries (RQL),
// user-defined aggregators and delta handlers, cost-based optimization,
// and incremental failure recovery.
//
// A deployment is opened as a context-aware Session. In-process (every
// worker a goroutine):
//
//	s, err := rex.Open(ctx, rex.WithInProc(4))
//	defer s.Close()
//	s.CreateTable("graph", rex.Schema("srcId:Integer", "destId:Integer"), 0)
//	s.Load("graph", edges)
//	res, err := s.QueryCtx(ctx, `SELECT srcId, count(*) FROM graph GROUP BY srcId`)
//
// or across OS processes over TCP, through the same API — WithTCPPeers
// attaches to running rexnode daemons, WithAutoSpawn launches local child
// processes (see ServeNode):
//
//	s, err := rex.Open(ctx, rex.WithAutoSpawn(4),
//		rex.WithDataset("dbpedia", 2000, 1))
//
// Per-query knobs are variadic QueryOptions, accepted uniformly by
// QueryCtx, Stream, Prepare, and Subscribe — WithPriority and WithTenant
// address the rexd server's tenant-aware scheduler (see below),
// WithNoVectorize forces the row-at-a-time paths, WithBatchSize,
// WithMaxStrata, and friends tune execution:
//
//	res, err := s.QueryCtx(ctx, query,
//		rex.WithTenant("acme"), rex.WithPriority(rex.PriorityHigh))
//
// Queries honor their context end to end: cancellation or a deadline
// aborts a recursive query between strata and leaves the session usable.
// Streaming consumers observe the fixpoint converge stratum by stratum
// instead of waiting for the final relation:
//
//	st, err := s.Stream(ctx, query)
//	for stratum, deltas := range st.Seq() { ... }
//
// and serving workloads prepare once, execute many times:
//
//	stmt, err := s.Prepare(`SELECT sum(tax) FROM lineitem WHERE linenumber > $1`)
//	res, err := stmt.QueryCtx(ctx, rex.Options{}, int64(3))
//
// Standing queries keep the dataflow resident after the fixpoint closes:
// base-table changes ingested through Insert/Delete/LoadDeltas run
// incremental rounds whose output deltas stream to the subscriber, with
// work proportional to the change rather than the data:
//
//	sub, err := s.Subscribe(ctx, query)
//	s.Insert("graph", rex.NewTuple(int64(2), int64(977)))
//	for _, deltas := range sub.Stream().Seq() { ... }
//
// A rexd server (cmd/rexd) shares one partitioned engine among many such
// sessions: rex.Open(ctx, rex.WithServer(addr), rex.WithServerTenant(id))
// connects, queries from distinct tenants are admitted under per-tenant
// quotas (rex.ErrTenantBusy on exhaustion) and scheduled by priority
// across engine sub-pools, and subscriptions run as resident server-side
// dataflows. Session.Stats reports the unified snapshot, including the
// server's per-tenant counters. See Example (ServerMode) and
// Example (TenantScheduling).
//
// Write-heavy workloads use the asynchronous form: IngestAsync enqueues
// and returns an ack that resolves when the covering round completes, and
// requests queued while a round runs coalesce — folded to their net
// effect — into a single follow-up round:
//
//	ack, err := s.IngestAsync("graph", deltas)
//	rs, err := ack.Wait(ctx) // the coalesced round's stats
//
// Recursive queries use the RQL extension syntax of §3.1:
//
//	WITH R (cols) AS (base) UNION UNTIL FIXPOINT BY key [USING handler] (recursive)
//
// Internally the engine executes columnar: delta batches flow between
// operators as typed column vectors, travel the wire in a near-zero-copy
// frame layout, and recycle through per-round allocation pools. This is
// transparent — results are bit-identical with Options.NoVectorize, which
// forces the row-at-a-time paths (handler and UDF operators always run
// row-at-a-time; the engine bridges automatically).
//
// See the examples/ directory for PageRank, shortest-path, and K-means.
package rex

import (
	"fmt"
	"io"

	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/job"
	"github.com/rex-data/rex/internal/noded"
	"github.com/rex-data/rex/internal/storage"
	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

// Re-exported core types, so applications only import this package.
type (
	// Tuple is an ordered list of scalar values (int64, float64, string,
	// bool, nil).
	Tuple = types.Tuple
	// Value is a dynamically typed scalar.
	Value = types.Value
	// Delta is an annotated tuple: the unit of incremental dataflow.
	Delta = types.Delta
	// TupleSet is a mutable bucket of tuples passed to delta handlers.
	TupleSet = uda.TupleSet
	// Result is a completed query execution with per-stratum statistics.
	Result = exec.Result
	// StratumStats reports one recursive stratum (its Δᵢ size and time).
	StratumStats = exec.StratumStats
	// Options tunes one query execution (batching, recovery, termination).
	Options = exec.Options
	// RecoveryStrategy selects restart vs incremental failure recovery.
	RecoveryStrategy = exec.RecoveryStrategy
	// DeltaStream iterates the per-stratum delta batches of a running
	// query (see Session.Stream): Next/Err/Close, a Go 1.23 Seq adapter,
	// and Drain to fold the remainder into a final Result.
	DeltaStream = exec.ResultStream
	// DeltaBatch is one element of a DeltaStream: the state changes one
	// stratum made to the recursive relation.
	DeltaBatch = exec.StreamBatch
	// Workload is a self-contained, serializable job description: the
	// workload name, deterministic dataset parameters, and execution
	// options from which every process — this one and each rexnode
	// daemon — rebuilds an identical catalog, plan, and data partition.
	// It is the unit of multi-process execution (Session.RunWorkload).
	Workload = job.Spec
	// PoolStats is buffer-pool traffic for paged (spill-to-disk) stores:
	// hits, misses, evictions, and bytes spilled. Reported by
	// Session.PoolStats on in-process sessions opened with WithSpillDir.
	PoolStats = storage.PoolStats
)

// Recovery strategies.
const (
	RecoveryNone        = exec.RecoveryNone
	RecoveryRestart     = exec.RecoveryRestart
	RecoveryIncremental = exec.RecoveryIncremental
)

// Delta constructors (Definition 1 of the paper).
var (
	// Insert builds a +() delta.
	Insert = types.Insert
	// Delete builds a −() delta.
	Delete = types.Delete
	// Replace builds a →(t') delta.
	Replace = types.Replace
	// Update builds a δ(E) value-update delta for custom handlers.
	Update = types.Update
	// NewTuple builds a tuple from values.
	NewTuple = types.NewTuple
)

// Schema builds a schema from "name:Type" field specs
// (types: Integer, Double, String, Boolean).
func Schema(fields ...string) *types.Schema { return types.MustSchema(fields...) }

// ServeNode runs this process as a rexnode worker daemon on the given
// listen address (":0" picks a free port), announcing the bound address on
// stdout in the form WithAutoSpawn scans for, and serving jobs until the
// driver quits it. Programs that open sessions with WithAutoSpawn call
// this when invoked with their "-node" flag:
//
//	if *nodeMode {
//		if err := rex.ServeNode(*listen, os.Stderr); err != nil {
//			log.Fatal(err)
//		}
//		return
//	}
func ServeNode(listen string, logw io.Writer) error {
	return ServeNodeDurable(listen, logw, "", 0)
}

// ServeNodeDurable is ServeNode with a data directory: the daemon's store
// pages to disk through a buffer pool of poolPages 8 KiB pages, its active
// job is persisted under dataDir, and a restart on the same listen address
// and directory restores the job and its committed data before announcing
// the address — the contract driver-side crash recovery relies on (a
// respawned daemon that has announced is serving its restored job again).
// An empty dataDir degrades to ServeNode.
func ServeNodeDurable(listen string, logw io.Writer, dataDir string, poolPages int) error {
	n, err := noded.Listen(listen, logw)
	if err != nil {
		return err
	}
	if dataDir != "" {
		if err := n.UseDataDir(dataDir, poolPages); err != nil {
			return err
		}
		if _, err := n.Restore(); err != nil {
			return err
		}
	}
	fmt.Printf("%s%s\n", job.SpawnPrefix, n.Addr())
	return n.Serve()
}
