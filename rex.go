// Package rex is a from-scratch Go implementation of REX — the recursive,
// delta-based data-centric computation engine of Mihaylov, Ives and Guha
// (PVLDB 5(11), 2012). It exposes a shared-nothing parallel query engine
// whose recursive queries propagate programmable deltas between iterations
// instead of recomputing full state, with SQL-style queries (RQL),
// user-defined aggregators and delta handlers, cost-based optimization,
// and incremental failure recovery.
//
// Quick start:
//
//	cluster := rex.NewCluster(rex.ClusterConfig{Nodes: 4})
//	cluster.MustCreateTable("graph", rex.Schema("srcId:Integer", "destId:Integer"), 0)
//	cluster.MustLoad("graph", edges)
//	res, err := cluster.Query(`SELECT srcId, count(*) FROM graph GROUP BY srcId`)
//
// Recursive queries use the RQL extension syntax of §3.1:
//
//	WITH R (cols) AS (base) UNION UNTIL FIXPOINT BY key [USING handler] (recursive)
//
// See the examples/ directory for PageRank, shortest-path, and K-means.
package rex

import (
	"fmt"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/cluster"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/expr"
	"github.com/rex-data/rex/internal/rql"
	"github.com/rex-data/rex/internal/types"
	"github.com/rex-data/rex/internal/uda"
)

// Re-exported core types, so applications only import this package.
type (
	// Tuple is an ordered list of scalar values (int64, float64, string,
	// bool, nil).
	Tuple = types.Tuple
	// Value is a dynamically typed scalar.
	Value = types.Value
	// Delta is an annotated tuple: the unit of incremental dataflow.
	Delta = types.Delta
	// TupleSet is a mutable bucket of tuples passed to delta handlers.
	TupleSet = uda.TupleSet
	// Result is a completed query execution with per-stratum statistics.
	Result = exec.Result
	// StratumStats reports one recursive stratum (its Δᵢ size and time).
	StratumStats = exec.StratumStats
	// Options tunes one query execution (batching, recovery, termination).
	Options = exec.Options
	// RecoveryStrategy selects restart vs incremental failure recovery.
	RecoveryStrategy = exec.RecoveryStrategy
)

// Recovery strategies.
const (
	RecoveryNone        = exec.RecoveryNone
	RecoveryRestart     = exec.RecoveryRestart
	RecoveryIncremental = exec.RecoveryIncremental
)

// Delta constructors (Definition 1 of the paper).
var (
	// Insert builds a +() delta.
	Insert = types.Insert
	// Delete builds a −() delta.
	Delete = types.Delete
	// Replace builds a →(t') delta.
	Replace = types.Replace
	// Update builds a δ(E) value-update delta for custom handlers.
	Update = types.Update
	// NewTuple builds a tuple from values.
	NewTuple = types.NewTuple
)

// Schema builds a schema from "name:Type" field specs
// (types: Integer, Double, String, Boolean).
func Schema(fields ...string) *types.Schema { return types.MustSchema(fields...) }

// ClusterConfig shapes a simulated REX cluster.
type ClusterConfig struct {
	// Nodes is the worker count (default 4).
	Nodes int
	// Replication is the storage/checkpoint replication factor (default 3).
	Replication int
	// VirtualNodes per worker on the consistent-hash ring (default 64).
	VirtualNodes int
}

// Cluster is a running REX deployment: a catalog plus worker nodes with
// partitioned replicated storage.
type Cluster struct {
	cfg ClusterConfig
	cat *catalog.Catalog
	eng *exec.Engine
}

// NewCluster boots a simulated shared-nothing cluster.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = 64
	}
	cat := catalog.New()
	return &Cluster{
		cfg: cfg,
		cat: cat,
		eng: exec.NewEngine(cfg.Nodes, cfg.VirtualNodes, cfg.Replication, cat),
	}
}

// Catalog exposes the cluster's catalog for registering user-defined
// functions, aggregators, and delta handlers.
func (c *Cluster) Catalog() *catalog.Catalog { return c.cat }

// Engine exposes the underlying executor (plan-level API and metrics).
func (c *Cluster) Engine() *exec.Engine { return c.eng }

// CreateTable declares a table hash-partitioned by the given column.
func (c *Cluster) CreateTable(name string, schema *types.Schema, partitionKey int) error {
	return c.cat.AddTable(&catalog.Table{Name: name, Schema: schema, PartitionKey: partitionKey})
}

// MustCreateTable is CreateTable, panicking on error.
func (c *Cluster) MustCreateTable(name string, schema *types.Schema, partitionKey int) {
	if err := c.CreateTable(name, schema, partitionKey); err != nil {
		panic(err)
	}
}

// Load distributes tuples into the table's replicated partitions.
func (c *Cluster) Load(table string, tuples []Tuple) error {
	tab, err := c.cat.Table(table)
	if err != nil {
		return err
	}
	stats := tab.Stats
	stats.RowCount += int64(len(tuples))
	if err := c.eng.Load(table, tab.PartitionKey, tuples); err != nil {
		return err
	}
	return c.cat.SetStats(table, stats)
}

// MustLoad is Load, panicking on error.
func (c *Cluster) MustLoad(table string, tuples []Tuple) {
	if err := c.Load(table, tuples); err != nil {
		panic(err)
	}
}

// Query compiles and executes an RQL query with default options.
func (c *Cluster) Query(src string) (*Result, error) {
	return c.QueryWithOptions(src, Options{})
}

// QueryWithOptions compiles and executes an RQL query.
func (c *Cluster) QueryWithOptions(src string, opts Options) (*Result, error) {
	spec, err := rql.Compile(src, c.cat, c.cfg.Nodes)
	if err != nil {
		return nil, err
	}
	return c.eng.Run(spec, opts)
}

// RunPlan executes a hand-built physical plan (the plan-level API used by
// the algorithm library and benchmarks).
func (c *Cluster) RunPlan(spec *exec.PlanSpec, opts Options) (*Result, error) {
	return c.eng.Run(spec, opts)
}

// RegisterFunc registers a scalar UDF callable from RQL.
func (c *Cluster) RegisterFunc(name string, argKinds []types.Kind, ret types.Kind,
	deterministic bool, fn func(args []Value) (Value, error)) error {
	return c.cat.RegisterFunc(&catalog.FuncDef{
		Name: name, ArgKinds: argKinds, RetKind: ret,
		Fn: expr.ScalarFn(fn), Deterministic: deterministic,
	})
}

// JoinHandler registers a join-state delta handler (§3.3): called with the
// join buckets for a delta's key; revises them and returns output deltas.
func (c *Cluster) JoinHandler(name string, out *types.Schema,
	fn func(left, right *TupleSet, d Delta, fromLeft bool) ([]Delta, error)) error {
	return c.cat.RegisterJoinHandler(&uda.FuncJoinHandler{HName: name, Out: out, Fn: fn})
}

// WhileHandler registers a while-state delta handler (§3.3): called by the
// fixpoint with the state bucket for a delta's key; returns the Δ set to
// feed the next stratum.
func (c *Cluster) WhileHandler(name string,
	fn func(rel *TupleSet, d Delta) ([]Delta, error)) error {
	return c.cat.RegisterWhileHandler(&uda.FuncWhileHandler{HName: name, Fn: fn})
}

// Kill injects a node failure (for testing recovery).
func (c *Cluster) Kill(node int) {
	if node < 0 || node >= c.cfg.Nodes {
		panic(fmt.Sprintf("rex: no node %d", node))
	}
	c.eng.Transport.Kill(clusterNode(node))
}

// BytesShipped reports the total bytes sent over the simulated network.
func (c *Cluster) BytesShipped() int64 {
	return c.eng.Transport.Metrics().TotalBytesSent()
}

// clusterNode converts an int to the internal node id type.
func clusterNode(n int) cluster.NodeID { return cluster.NodeID(n) }
