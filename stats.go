package rex

import (
	"context"
	"fmt"

	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/srvproto"
)

// KernelStats snapshots the expression-kernel counters: kernels compiled
// at operator instantiation, batches evaluated column-wise, batches
// bridged row-by-row through scratch tuples, and batches a compiled
// kernel declined back to the row interpreter.
type KernelStats = exec.KernelStats

// Stats is the unified session snapshot: one call covers what the
// deprecated per-surface getters (ServerStats, PoolStats) and
// Subscription.Rounds reported separately. Fields that do not apply to
// the session's transport are zero — an in-process session has no
// Server block, a server session's pool counters live inside it.
type Stats struct {
	// Transport names the session's backend: "inproc", "tcp", or
	// "server". Nodes is the worker count (the server pool's size on a
	// server session).
	Transport string
	Nodes     int
	// Pool aggregates buffer-pool traffic across an in-process session's
	// paged stores (WithSpillDir); all-zero otherwise. A rexd server's
	// pool counters are inside Server.
	Pool PoolStats
	// BytesShipped is the measured inter-worker wire volume (zero on a
	// server session — the server's pool does the shipping).
	BytesShipped int64
	// Kernel is the process-wide expression-kernel counter snapshot for
	// local (inproc/tcp) sessions. On a server session the server's own
	// kernel counters travel inside Server instead.
	Kernel KernelStats
	// Server is the rexd server's counter snapshot on server sessions —
	// admission, plan cache, scheduler (sub-pools, inflight, queue
	// depth), and the per-tenant quota counters. Nil otherwise.
	Server *ServerStats
	// SubscriptionRounds is the live subscription's per-round history
	// (initial fixpoint included); nil when no subscription is live.
	SubscriptionRounds []RoundStats
}

// Stats reports the session's unified statistics snapshot. On a server
// session it round-trips to the server for the scheduler and plan-cache
// counters; elsewhere it assembles locally and the error is always nil.
func (s *Session) Stats(ctx context.Context) (*Stats, error) {
	st := &Stats{Nodes: s.Nodes()}
	switch {
	case s.srv != nil:
		st.Transport = "server"
		tr, err := s.srv.roundTrip(ctx, srvproto.Request{Op: srvproto.OpStats})
		if err != nil {
			return nil, err
		}
		if tr.Stats == nil {
			return nil, fmt.Errorf("rex: server sent a stats reply without stats")
		}
		st.Server = tr.Stats
	case s.jc != nil:
		st.Transport = "tcp"
		st.BytesShipped = s.BytesShipped()
		st.Kernel = exec.ReadKernelStats()
	default:
		st.Transport = "inproc"
		st.Pool = s.eng.PoolStats()
		st.BytesShipped = s.BytesShipped()
		st.Kernel = exec.ReadKernelStats()
	}
	if sub := s.liveSub(); sub != nil {
		st.SubscriptionRounds = sub.Rounds()
	}
	return st, nil
}
