package rex

import (
	"context"
	"fmt"

	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/rql"
	"github.com/rex-data/rex/internal/srvproto"
)

// Stmt is a prepared RQL statement: the query is parsed, bound, and
// planned once at Prepare time, and executed many times with $1-style
// parameter values bound per run — serving workloads skip the
// reparse/replan entirely. Parameter types are inferred from context
// during binding (comparison partner, arithmetic partner, UDF signature);
// integer values coerce to float where a float was inferred.
//
// On a TCP session plans cannot ship across the wire (every daemon
// recompiles from the job spec), so Prepare validates and plans once
// driver-side and each execution binds the values into the query text as
// literals instead. On a server session the statement compiles into the
// rexd server's shared plan cache, and executions ship the text plus the
// bound argument values — the cached plan is keyed by the text alone, so
// every execution of the statement, whatever its arguments, reuses it.
type Stmt struct {
	sess *Session
	src  string

	// plan is the compiled plan (in-process sessions only; a TCP
	// session's daemons recompile from the job spec). prep carries the
	// inferred parameter kinds on both paths, so argument type errors
	// surface driver-side before anything executes.
	plan *exec.PlanSpec
	prep *rql.Prepared

	// remote marks a server-session statement; nparams is the parameter
	// count the server reported at Prepare (argument kinds are checked
	// server-side at bind time).
	remote  bool
	nparams int

	// def carries the statement's Prepare-time default options; an
	// execution passing a zero Options value inherits them.
	def Options
}

// Prepare compiles an RQL statement with $N placeholders for repeated
// execution. QueryOptions become the statement's defaults: executions
// that pass a zero Options value inherit them (a non-zero per-execution
// Options replaces them wholesale).
func (s *Session) Prepare(src string, qopts ...QueryOption) (*Stmt, error) {
	def := buildOptions(qopts)
	if s.srv != nil {
		tr, err := s.srv.roundTrip(context.Background(), srvproto.Request{Op: srvproto.OpPrepare, Src: src})
		if err != nil {
			return nil, err
		}
		return &Stmt{sess: s, src: src, remote: true, nparams: tr.NumParams, def: def}, nil
	}
	if s.jc != nil {
		// Validate against the session's schema catalog, staged at Open
		// like the daemons' (dataset schemas plus the handler bundle).
		if s.schemaCat == nil {
			return nil, fmt.Errorf("rex: TCP sessions need WithDataset to stage data for RQL queries")
		}
		_, prep, err := rql.CompileStmt(src, s.schemaCat, s.Nodes())
		if err != nil {
			return nil, err
		}
		return &Stmt{sess: s, src: src, prep: prep, def: def}, nil
	}
	plan, prep, err := rql.CompileStmt(src, s.cat, s.cfg.nodes)
	if err != nil {
		return nil, err
	}
	return &Stmt{sess: s, src: src, plan: plan, prep: prep, def: def}, nil
}

// effOpts resolves one execution's options: a zero per-call Options
// falls back to the statement's Prepare-time defaults.
func (st *Stmt) effOpts(opts Options) Options {
	if isZeroOpts(opts) {
		return st.def
	}
	return opts
}

// isZeroOpts reports whether o is the zero Options value (Options holds
// func fields, so it is not comparable with ==).
func isZeroOpts(o Options) bool {
	return o.BatchSize == 0 && o.MaxStrata == 0 && o.Recovery == RecoveryNone &&
		!o.Checkpoint && !o.Compaction && o.CompactionHighWater == 0 &&
		!o.Stream && !o.NoVectorize && o.TermFn == nil && o.OnStratum == nil &&
		o.Recover == nil && o.SpillDir == "" && o.BufferPoolPages == 0 &&
		o.Tenant == "" && o.Priority == 0
}

// NumParams reports the statement's placeholder count.
func (st *Stmt) NumParams() int {
	if st.remote {
		return st.nparams
	}
	return st.prep.NumParams()
}

// Query executes the statement with the given parameter values and
// default options.
//
// Deprecated: use QueryCtx — the canonical, context-first entry point.
// Query is a thin wrapper kept for source compatibility.
func (st *Stmt) Query(args ...Value) (*Result, error) {
	return st.QueryCtx(context.Background(), Options{}, args...)
}

// QueryCtx executes the statement under a context with the given options
// and parameter values. A zero Options inherits the Prepare-time
// defaults (see Prepare's QueryOptions).
func (st *Stmt) QueryCtx(ctx context.Context, opts Options, args ...Value) (*Result, error) {
	s := st.sess
	opts = st.effOpts(opts)
	if st.remote {
		if err := st.checkRemoteArgs(args); err != nil {
			return nil, err
		}
		return s.serverQuery(ctx, st.src, args, opts)
	}
	if s.jc != nil {
		src, err := st.bindText(args)
		if err != nil {
			return nil, err
		}
		spec, err := s.rqlSpec(src, opts)
		if err != nil {
			return nil, err
		}
		return s.runTCP(ctx, spec, driverTune(opts))
	}
	if err := s.lock(); err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	if err := st.prep.Bind(args); err != nil {
		return nil, err
	}
	return s.runInProcLocked(ctx, st.plan, opts)
}

// StreamCtx executes the statement in streaming-result mode (see
// Session.Stream). A zero Options inherits the Prepare-time defaults.
func (st *Stmt) StreamCtx(ctx context.Context, opts Options, args ...Value) (*DeltaStream, error) {
	s := st.sess
	opts = st.effOpts(opts)
	if st.remote {
		if err := st.checkRemoteArgs(args); err != nil {
			return nil, err
		}
		return s.serverStream(ctx, st.src, args, opts)
	}
	if s.jc != nil {
		src, err := st.bindText(args)
		if err != nil {
			return nil, err
		}
		spec, err := s.rqlSpec(src, opts)
		if err != nil {
			return nil, err
		}
		if err := s.lock(); err != nil {
			return nil, err
		}
		stream, err := s.jc.StreamCtx(ctx, spec, driverTune(opts))
		return s.unlockWhenDone(stream, err)
	}
	if err := s.lock(); err != nil {
		return nil, err
	}
	if err := st.prep.Bind(args); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	stream, err := s.eng.Stream(ctx, st.plan, opts)
	return s.unlockWhenDone(stream, err)
}

// checkRemoteArgs enforces the arity the server reported; value kinds
// are checked server-side when the cached plan binds them.
func (st *Stmt) checkRemoteArgs(args []Value) error {
	if len(args) != st.nparams {
		return fmt.Errorf("rex: statement wants %d parameters, got %d", st.nparams, len(args))
	}
	return nil
}

// bindText typechecks args against the inferred parameter kinds and
// renders the coerced values into the statement text for the wire (TCP
// path) — an int bound where a float was inferred ships as a float
// literal, matching what the in-process path would execute.
func (st *Stmt) bindText(args []Value) (string, error) {
	vals, err := st.prep.Check(args)
	if err != nil {
		return "", err
	}
	return rql.BindText(st.src, vals)
}
