package rex

import (
	"context"
	"fmt"

	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/rql"
)

// Stmt is a prepared RQL statement: the query is parsed, bound, and
// planned once at Prepare time, and executed many times with $1-style
// parameter values bound per run — serving workloads skip the
// reparse/replan entirely. Parameter types are inferred from context
// during binding (comparison partner, arithmetic partner, UDF signature);
// integer values coerce to float where a float was inferred.
//
// On a TCP session plans cannot ship across the wire (every daemon
// recompiles from the job spec), so Prepare validates and plans once
// driver-side and each execution binds the values into the query text as
// literals instead.
type Stmt struct {
	sess *Session
	src  string

	// plan is the compiled plan (in-process sessions only; a TCP
	// session's daemons recompile from the job spec). prep carries the
	// inferred parameter kinds on both paths, so argument type errors
	// surface driver-side before anything executes.
	plan *exec.PlanSpec
	prep *rql.Prepared
}

// Prepare compiles an RQL statement with $N placeholders for repeated
// execution.
func (s *Session) Prepare(src string) (*Stmt, error) {
	if s.jc != nil {
		// Validate against the session's schema catalog, staged at Open
		// like the daemons' (dataset schemas plus the handler bundle).
		if s.schemaCat == nil {
			return nil, fmt.Errorf("rex: TCP sessions need WithDataset to stage data for RQL queries")
		}
		_, prep, err := rql.CompileStmt(src, s.schemaCat, s.Nodes())
		if err != nil {
			return nil, err
		}
		return &Stmt{sess: s, src: src, prep: prep}, nil
	}
	plan, prep, err := rql.CompileStmt(src, s.cat, s.cfg.nodes)
	if err != nil {
		return nil, err
	}
	return &Stmt{sess: s, src: src, plan: plan, prep: prep}, nil
}

// NumParams reports the statement's placeholder count.
func (st *Stmt) NumParams() int { return st.prep.NumParams() }

// Query executes the statement with the given parameter values and
// default options.
func (st *Stmt) Query(args ...Value) (*Result, error) {
	return st.QueryCtx(context.Background(), Options{}, args...)
}

// QueryCtx executes the statement under a context with the given options
// and parameter values.
func (st *Stmt) QueryCtx(ctx context.Context, opts Options, args ...Value) (*Result, error) {
	s := st.sess
	if s.jc != nil {
		src, err := st.bindText(args)
		if err != nil {
			return nil, err
		}
		spec, err := s.rqlSpec(src, opts)
		if err != nil {
			return nil, err
		}
		return s.runTCP(ctx, spec, driverTune(opts))
	}
	if err := s.lock(); err != nil {
		return nil, err
	}
	defer s.mu.Unlock()
	if err := st.prep.Bind(args); err != nil {
		return nil, err
	}
	return s.runInProcLocked(ctx, st.plan, opts)
}

// StreamCtx executes the statement in streaming-result mode (see
// Session.Stream).
func (st *Stmt) StreamCtx(ctx context.Context, opts Options, args ...Value) (*DeltaStream, error) {
	s := st.sess
	if s.jc != nil {
		src, err := st.bindText(args)
		if err != nil {
			return nil, err
		}
		spec, err := s.rqlSpec(src, opts)
		if err != nil {
			return nil, err
		}
		if err := s.lock(); err != nil {
			return nil, err
		}
		stream, err := s.jc.StreamCtx(ctx, spec, driverTune(opts))
		return s.unlockWhenDone(stream, err)
	}
	if err := s.lock(); err != nil {
		return nil, err
	}
	if err := st.prep.Bind(args); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	stream, err := s.eng.Stream(ctx, st.plan, opts)
	return s.unlockWhenDone(stream, err)
}

// bindText typechecks args against the inferred parameter kinds and
// renders the coerced values into the statement text for the wire (TCP
// path) — an int bound where a float was inferred ships as a float
// literal, matching what the in-process path would execute.
func (st *Stmt) bindText(args []Value) (string, error) {
	vals, err := st.prep.Check(args)
	if err != nil {
		return "", err
	}
	return rql.BindText(st.src, vals)
}
