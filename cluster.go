package rex

import (
	"context"

	"github.com/rex-data/rex/internal/catalog"
	"github.com/rex-data/rex/internal/exec"
	"github.com/rex-data/rex/internal/types"
)

// ClusterConfig shapes a simulated REX cluster.
//
// Deprecated: use Open with functional options instead.
type ClusterConfig struct {
	// Nodes is the worker count (default 4).
	Nodes int
	// Replication is the storage/checkpoint replication factor (default 3).
	Replication int
	// VirtualNodes per worker on the consistent-hash ring (default 64).
	VirtualNodes int
}

// Cluster is the pre-session handle on an in-process REX deployment. It is
// a thin shim over Session that preserves the original panicking/blocking
// call shapes.
//
// Deprecated: use Open, which returns a context-aware Session with error
// returns, streaming results, prepared statements, and TCP transports.
type Cluster struct {
	s *Session
}

// NewCluster boots a simulated shared-nothing cluster.
//
// Deprecated: use Open(ctx, WithInProc(n), ...).
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = 64
	}
	s, err := Open(context.Background(),
		WithInProc(cfg.Nodes), WithReplication(cfg.Replication), WithVirtualNodes(cfg.VirtualNodes))
	if err != nil {
		panic(err) // unreachable for in-process configs
	}
	return &Cluster{s: s}
}

// Session returns the underlying session, the migration path to the
// modern API.
func (c *Cluster) Session() *Session { return c.s }

// Catalog exposes the cluster's catalog for registering user-defined
// functions, aggregators, and delta handlers.
func (c *Cluster) Catalog() *catalog.Catalog { return c.s.Catalog() }

// Engine exposes the underlying executor (plan-level API and metrics).
func (c *Cluster) Engine() *exec.Engine { return c.s.Engine() }

// CreateTable declares a table hash-partitioned by the given column.
func (c *Cluster) CreateTable(name string, schema *types.Schema, partitionKey int) error {
	return c.s.CreateTable(name, schema, partitionKey)
}

// MustCreateTable is CreateTable, panicking on error.
func (c *Cluster) MustCreateTable(name string, schema *types.Schema, partitionKey int) {
	if err := c.CreateTable(name, schema, partitionKey); err != nil {
		panic(err)
	}
}

// Load distributes tuples into the table's replicated partitions.
func (c *Cluster) Load(table string, tuples []Tuple) error {
	return c.s.Load(table, tuples)
}

// MustLoad is Load, panicking on error.
func (c *Cluster) MustLoad(table string, tuples []Tuple) {
	if err := c.Load(table, tuples); err != nil {
		panic(err)
	}
}

// Query compiles and executes an RQL query with default options.
func (c *Cluster) Query(src string) (*Result, error) {
	return c.s.QueryCtx(context.Background(), src)
}

// QueryWithOptions compiles and executes an RQL query.
func (c *Cluster) QueryWithOptions(src string, opts Options) (*Result, error) {
	return c.s.QueryCtx(context.Background(), src, WithOptions(opts))
}

// RunPlan executes a hand-built physical plan.
func (c *Cluster) RunPlan(spec *exec.PlanSpec, opts Options) (*Result, error) {
	return c.s.RunPlan(context.Background(), spec, opts)
}

// RegisterFunc registers a scalar UDF callable from RQL.
func (c *Cluster) RegisterFunc(name string, argKinds []types.Kind, ret types.Kind,
	deterministic bool, fn func(args []Value) (Value, error)) error {
	return c.s.RegisterFunc(name, argKinds, ret, deterministic, fn)
}

// JoinHandler registers a join-state delta handler (§3.3).
func (c *Cluster) JoinHandler(name string, out *types.Schema,
	fn func(left, right *TupleSet, d Delta, fromLeft bool) ([]Delta, error)) error {
	return c.s.JoinHandler(name, out, fn)
}

// WhileHandler registers a while-state delta handler (§3.3).
func (c *Cluster) WhileHandler(name string,
	fn func(rel *TupleSet, d Delta) ([]Delta, error)) error {
	return c.s.WhileHandler(name, fn)
}

// Kill injects a node failure, panicking on an unknown node (the original
// call shape; Session.Kill returns an error instead).
func (c *Cluster) Kill(node int) {
	if err := c.s.Kill(node); err != nil {
		panic(err)
	}
}

// BytesShipped reports the total bytes sent over the simulated network.
func (c *Cluster) BytesShipped() int64 { return c.s.BytesShipped() }
